"""Batched Byzantine adversary interface for the vectorized engine.

The scalar engines interrogate a :class:`~repro.adversary.base.ByzantineStrategy`
one faulty node at a time through per-node Python dicts.  The vectorized
engine (:mod:`repro.simulation.vectorized`) instead works on a ``(B, n)``
state matrix covering ``B`` independent executions at once, so its adversary
hook is batched as well: once per round the engine asks the strategy for the
value on **every** faulty→fault-free channel of **every** batched execution
in a single call returning a ``(B, E_f)`` array.

Two layers make the strategy zoo usable against the fast engines:

* :class:`ScalarStrategyAdapter` wraps any scalar
  :class:`~repro.adversary.base.ByzantineStrategy` (including the stateful and
  randomized ones in :mod:`repro.adversary.strategies`) and replays it per
  batch row.  With ``B = 1`` the adapter reproduces the scalar engine's calls
  exactly — including call order and RNG consumption — which is what the
  round-for-round equivalence mode relies on.
* A **batch-native strategy library** re-implements every scalar strategy as
  array arithmetic over the ``(B, E_f)`` channel matrix, bit-for-bit identical
  to the scalar versions while running whole batches per round:
  :class:`BatchExtremePushStrategy`, :class:`BatchStaticValueStrategy`,
  :class:`BatchSplitBrainStrategy` (witness-driven per-edge routing
  precomputed as column masks), :class:`BatchFrozenValueStrategy` (per-row
  frozen state), :class:`BatchRandomNoiseStrategy` (per-row
  ``SeedSequence.spawn`` streams following the RNG-stream contract) and
  :class:`BatchBroadcastConsistentWrapper` (collapses any batch strategy's
  per-edge matrix to per-sender columns).

Every native strategy is proven bit-exact against its adapter-wrapped scalar
counterpart at ``B = 1`` and row-for-row reproducible at larger ``B`` by the
parity harness in ``tests/test_adversary_batch.py``, on both the synchronous
and the partially asynchronous vectorized engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.adversary.base import AdversaryContext, ByzantineStrategy
from repro.adversary.strategies import split_brain_recommended_inputs
from repro.exceptions import InvalidParameterError, SimulationError
from repro.graphs.digraph import Digraph
from repro.types import NodeId, PartitionWitness


@dataclass(frozen=True)
class BatchAdversaryContext:
    """Complete system knowledge handed to a batch strategy each round.

    Mirrors :class:`~repro.adversary.base.AdversaryContext` but exposes the
    state of all ``B`` executions as arrays instead of one execution as dicts.

    Attributes
    ----------
    graph:
        The communication graph (shared by every execution in the batch).
    round_index:
        The iteration ``t`` about to be executed.
    state:
        ``(B, n)`` array: ``state[b, c]`` is node ``nodes[c]``'s value
        ``v[t − 1]`` in execution ``b``.  Treat it as read-only.
    nodes:
        Column order of ``state`` (nodes sorted by ``repr``).
    faulty:
        The Byzantine node set ``F``.
    f:
        The fault budget the fault-free nodes defend against.
    faulty_columns:
        Columns of ``state`` occupied by faulty nodes.
    fault_free_columns:
        Columns of ``state`` occupied by fault-free nodes.
    edge_nodes:
        The faulty→fault-free channels ``(sender, receiver)`` the strategy
        must fill, in the order the returned value matrix is interpreted.
    edge_source_columns / edge_target_columns:
        The same channels as column indices into ``state``.
    active_edge_mask:
        ``(E_f,)`` bool, or ``None``.  Populated by schedule-aware engines
        (:mod:`repro.simulation.dynamic`): ``False`` marks channels that are
        masked down this round (the receiver substitutes its own value), so
        an adaptive strategy can avoid wasting pushes on dead channels.
        ``None`` means every channel is live.  Strategies must still return
        a value for **every** channel — the engine applies the masking.
    """

    graph: Digraph
    round_index: int
    state: np.ndarray
    nodes: tuple[NodeId, ...]
    faulty: frozenset[NodeId]
    f: int
    faulty_columns: np.ndarray
    fault_free_columns: np.ndarray
    edge_nodes: tuple[tuple[NodeId, NodeId], ...]
    edge_source_columns: np.ndarray
    edge_target_columns: np.ndarray
    active_edge_mask: np.ndarray | None = None

    @property
    def batch_size(self) -> int:
        """Number of independent executions ``B`` in the batch."""
        return int(self.state.shape[0])

    @property
    def fault_free_states(self) -> np.ndarray:
        """``(B, n − |F|)`` view of the fault-free nodes' states."""
        return self.state[:, self.fault_free_columns]

    @property
    def fault_free_max(self) -> np.ndarray:
        """``U[t − 1]`` per execution: shape ``(B,)``."""
        return self.fault_free_states.max(axis=1)

    @property
    def fault_free_min(self) -> np.ndarray:
        """``µ[t − 1]`` per execution: shape ``(B,)``."""
        return self.fault_free_states.min(axis=1)

    def values_for_row(self, row: int) -> dict[NodeId, float]:
        """Return execution ``row``'s state as a scalar-style value map."""
        return {
            node: float(self.state[row, column])
            for column, node in enumerate(self.nodes)
        }


class BatchStrategy(ABC):
    """Behaviour of the faulty nodes across a whole batch of executions.

    One instance controls all faulty nodes in all ``B`` executions; the
    engine calls :meth:`edge_values` once per round.
    """

    #: Human-readable name used in reports and benchmark tables.
    name: str = "batch-strategy"

    @abstractmethod
    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        """Return a ``(B, E_f)`` array of channel values.

        Column ``e`` holds, for every execution, the value the faulty sender
        of ``context.edge_nodes[e]`` places on that channel this round.
        Different channels out of the same faulty node may carry different
        values — the point-to-point equivocation power of the paper's model.
        """

    def nominal_values(self, context: BatchAdversaryContext) -> np.ndarray:
        """Return a ``(B, |F|)`` array of the faulty nodes' nominal states.

        Fault-free nodes never rely on these; they only label trace entries.
        The default keeps each faulty node's previous recorded state, matching
        :meth:`repro.adversary.base.ByzantineStrategy.nominal_value`.
        """
        return np.array(context.state[:, context.faulty_columns])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class BatchPassiveStrategy(BatchStrategy):
    """Faulty nodes that follow the protocol: each channel carries the
    sender's previous state, identically in every execution."""

    name = "batch-passive"

    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        return np.array(context.state[:, context.edge_source_columns])


class BatchExtremePushStrategy(BatchStrategy):
    """Vectorized :class:`~repro.adversary.strategies.ExtremePushStrategy`.

    Per execution: channels into receivers whose state is at or above the
    fault-free midpoint carry ``U[t−1] + delta``; the rest carry
    ``µ[t−1] − delta``.  The arithmetic matches the scalar strategy
    bit-for-bit, so a ``B = 1`` batch reproduces the scalar engine's
    execution exactly.
    """

    name = "batch-extreme-push"

    def __init__(self, delta: float = 1.0) -> None:
        if delta < 0:
            raise InvalidParameterError(f"delta must be >= 0, got {delta}")
        self._delta = float(delta)

    @property
    def delta(self) -> float:
        """How far beyond the fault-free extremes the adversary pushes."""
        return self._delta

    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        upper = context.fault_free_max
        lower = context.fault_free_min
        midpoint = (upper + lower) / 2.0
        high_value = upper + self._delta
        low_value = lower - self._delta
        receiver_state = context.state[:, context.edge_target_columns]
        return np.where(
            receiver_state >= midpoint[:, None],
            high_value[:, None],
            low_value[:, None],
        )


class _ChannelLayoutStrategy(BatchStrategy):
    """Base for native strategies that precompute per-channel index arrays.

    The engine hands the same ``edge_nodes`` tuple (and graph) to every
    round's context, so whatever a strategy derives from the channel order —
    column masks, draw positions, sender ranks — is computed once on first
    use and reused for the whole run.  Driving one instance against a
    different engine (different channel order or graph) transparently
    rebuilds the layout.

    Under a dynamic topology schedule the channel *order* is still static,
    but ``context.active_edge_mask`` varies per round.  A strategy whose
    layout depends on the mask must set ``mask_sensitive = True``: the cache
    is then additionally keyed on the mask bytes and rebuilt whenever the
    round's mask differs from the cached one.  The shipped strategies all
    derive mask-independent layouts and keep the default (``False``), so a
    static-schedule run pays no extra cache churn.
    """

    #: Whether :meth:`_build_layout` reads ``context.active_edge_mask``.
    mask_sensitive: bool = False

    def __init__(self) -> None:
        self._layout_graph: Digraph | None = None
        self._layout_key: tuple[tuple[NodeId, NodeId], ...] | None = None
        self._layout_mask_key: bytes | None = None
        self._layout: object = None

    def _build_layout(self, context: BatchAdversaryContext) -> object:
        """Return the strategy-specific precomputation for this context."""
        raise NotImplementedError

    def _layout_for(self, context: BatchAdversaryContext) -> object:
        mask_key: bytes | None = None
        if self.mask_sensitive and context.active_edge_mask is not None:
            mask_key = np.asarray(context.active_edge_mask, dtype=bool).tobytes()
        if (
            self._layout_graph is not context.graph
            or (
                self._layout_key is not context.edge_nodes
                and self._layout_key != context.edge_nodes
            )
            or self._layout_mask_key != mask_key
        ):
            self._layout = self._build_layout(context)
            self._layout_graph = context.graph
            self._layout_key = context.edge_nodes
            self._layout_mask_key = mask_key
        return self._layout


class BatchStaticValueStrategy(BatchStrategy):
    """Vectorized :class:`~repro.adversary.strategies.StaticValueStrategy`:
    every channel of every execution carries the same constant."""

    name = "batch-static-value"

    def __init__(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        """The constant value sent on every channel."""
        return self._value

    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        return np.full(
            (context.batch_size, len(context.edge_nodes)), self._value
        )

    def nominal_values(self, context: BatchAdversaryContext) -> np.ndarray:
        return np.full(
            (context.batch_size, context.faulty_columns.shape[0]), self._value
        )


class BatchSplitBrainStrategy(_ChannelLayoutStrategy):
    """Vectorized :class:`~repro.adversary.strategies.SplitBrainStrategy`.

    The witness fixes what each channel carries for the whole execution:
    ``low − margin`` into ``L``, ``high + margin`` into ``R``, the midpoint
    elsewhere.  The per-edge routing is therefore precomputed once as a
    length-``E_f`` column vector (receivers classified against the witness
    sets) and broadcast over the batch each round — the round cost is
    independent of ``|F|`` and of the witness size.
    """

    name = "batch-split-brain"

    def __init__(
        self,
        witness: PartitionWitness,
        low_value: float,
        high_value: float,
        margin: float = 1.0,
    ) -> None:
        super().__init__()
        if high_value <= low_value:
            raise InvalidParameterError(
                f"high_value ({high_value}) must exceed low_value ({low_value})"
            )
        if margin <= 0:
            raise InvalidParameterError(f"margin must be > 0, got {margin}")
        self._witness = witness
        self._low = float(low_value)
        self._high = float(high_value)
        self._margin = float(margin)

    @property
    def witness(self) -> PartitionWitness:
        """The violating partition the attack is built around."""
        return self._witness

    def recommended_inputs(self) -> dict[NodeId, float]:
        """Return the necessity-proof input assignment (as the scalar class)."""
        return split_brain_recommended_inputs(self._witness, self._low, self._high)

    def _build_layout(self, context: BatchAdversaryContext) -> np.ndarray:
        midpoint = (self._low + self._high) / 2.0
        below = self._low - self._margin
        above = self._high + self._margin
        row = np.empty(len(context.edge_nodes), dtype=float)
        for position, (_sender, receiver) in enumerate(context.edge_nodes):
            if receiver in self._witness.left:
                row[position] = below
            elif receiver in self._witness.right:
                row[position] = above
            else:
                row[position] = midpoint
        return row

    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        row = self._layout_for(context)
        # Read-only broadcast view: the engines only gather from the channel
        # matrix, so no per-round (B, E_f) materialisation is needed.
        return np.broadcast_to(row, (context.batch_size, row.shape[0]))

    def nominal_values(self, context: BatchAdversaryContext) -> np.ndarray:
        midpoint = (self._low + self._high) / 2.0
        return np.full(
            (context.batch_size, context.faulty_columns.shape[0]), midpoint
        )


class BatchFrozenValueStrategy(BatchStrategy):
    """Vectorized :class:`~repro.adversary.strategies.FrozenValueStrategy`.

    On first access (from either entry point — the scalar class's
    call-order bug is absent by construction) the faulty columns of the
    state matrix are snapshotted per row; every later round sends and
    reports those frozen values.  The per-row snapshot is what finally makes
    the frozen behaviour batch-safe: each execution freezes at *its own*
    inputs, where sharing one scalar instance across rows would freeze every
    row at the first row's state.
    """

    name = "batch-frozen-value"

    def __init__(self) -> None:
        self._frozen: np.ndarray | None = None

    def _freeze(self, context: BatchAdversaryContext) -> np.ndarray:
        if self._frozen is None:
            self._frozen = np.array(context.state[:, context.faulty_columns])
        if self._frozen.shape != (
            context.batch_size,
            context.faulty_columns.shape[0],
        ):
            raise InvalidParameterError(
                f"BatchFrozenValueStrategy froze a "
                f"{self._frozen.shape} state matrix but is now driven with "
                f"batch {context.batch_size} x {context.faulty_columns.shape[0]} "
                "faulty nodes; use a fresh instance per run"
            )
        return self._frozen

    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        frozen = self._freeze(context)
        # Channel e carries its sender's frozen value: map each channel's
        # state column to the sender's position among the faulty columns.
        sender_positions = np.searchsorted(
            context.faulty_columns, context.edge_source_columns
        )
        return frozen[:, sender_positions]

    def nominal_values(self, context: BatchAdversaryContext) -> np.ndarray:
        return np.array(self._freeze(context))


class BatchRandomNoiseStrategy(_ChannelLayoutStrategy):
    """Vectorized :class:`~repro.adversary.strategies.RandomNoiseStrategy`.

    Every batch row owns an independent random stream derived via
    ``SeedSequence.spawn`` (:func:`repro.simulation.vectorized_async.spawn_row_generators`,
    the RNG-stream contract), so row ``b`` of any batch width draws exactly
    what a ``B = 1`` run handed child stream ``b`` would draw.  Within a row
    the draws replay the scalar strategy verbatim: one
    ``uniform(low, high, size=out_degree)`` call per faulty sender in
    canonical (repr-sorted) order, covering **all** out-neighbours —
    including faulty receivers, whose draws are consumed and discarded purely
    to keep the stream aligned with the scalar implementation.

    Parameters
    ----------
    low, high:
        Noise bounds, as for the scalar strategy.
    rng:
        Root seed for the per-row streams: an ``int`` /
        :class:`numpy.random.SeedSequence` / ``None`` (spawned per row on
        first use), a :class:`numpy.random.Generator` (its ``spawn`` supplies
        the children), or an explicit sequence of per-row generators for
        callers needing full control (e.g. the ``B = 1`` parity harness,
        which hands the identical stream to the scalar strategy).
    """

    name = "batch-random-noise"

    def __init__(
        self,
        low: float,
        high: float,
        rng: object = None,
    ) -> None:
        super().__init__()
        if high < low:
            raise InvalidParameterError(
                f"high ({high}) must be >= low ({low}) for random noise"
            )
        self._low = float(low)
        self._high = float(high)
        self._rng = rng
        self._generators: list[np.random.Generator] | None = None

    def _generators_for(self, batch: int) -> list[np.random.Generator]:
        from repro.simulation.vectorized_async import spawn_row_generators

        if self._generators is None:
            self._generators = spawn_row_generators(self._rng, batch)
        if len(self._generators) != batch:
            raise InvalidParameterError(
                f"BatchRandomNoiseStrategy spawned {len(self._generators)} "
                f"row streams but is now driven with batch {batch}; use a "
                "fresh instance per run"
            )
        return self._generators

    def _build_layout(
        self, context: BatchAdversaryContext
    ) -> tuple[list[tuple[int, int]], np.ndarray]:
        """Return ``(per-sender draw spans, channel -> draw position)``.

        The draw vector of one row concatenates, per faulty sender in
        repr-sorted order, one uniform block over that sender's repr-sorted
        out-neighbours; ``positions[e]`` locates channel ``e``'s value in it.
        """
        channel_index = {
            edge: position for position, edge in enumerate(context.edge_nodes)
        }
        spans: list[tuple[int, int]] = []
        positions = np.zeros(len(context.edge_nodes), dtype=int)
        offset = 0
        for sender in sorted(context.faulty, key=repr):
            neighbors = sorted(context.graph.out_neighbors(sender), key=repr)
            spans.append((offset, len(neighbors)))
            for rank, receiver in enumerate(neighbors):
                channel = channel_index.get((sender, receiver))
                if channel is not None:
                    positions[channel] = offset + rank
            offset += len(neighbors)
        return spans, positions

    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        spans, positions = self._layout_for(context)
        generators = self._generators_for(context.batch_size)
        total = sum(count for _offset, count in spans)
        draws = np.empty((context.batch_size, total), dtype=float)
        for row, generator in enumerate(generators):
            for offset, count in spans:
                draws[row, offset : offset + count] = generator.uniform(
                    self._low, self._high, size=count
                )
        return draws[:, positions]


class BatchBroadcastConsistentWrapper(_ChannelLayoutStrategy):
    """Vectorized :class:`~repro.adversary.strategies.BroadcastConsistentStrategy`.

    Collapses any inner batch strategy's per-edge channel matrix to
    per-sender columns: every channel out of a faulty sender carries the
    value the inner strategy destined for that sender's first channel in
    canonical order — the edge to its ``repr``-smallest fault-free
    out-neighbour, matching the scalar wrapper's canonicalisation.  Nominal
    values pass through unchanged.
    """

    def __init__(self, inner: BatchStrategy) -> None:
        super().__init__()
        self._inner = inner
        self.name = f"broadcast({inner.name})"

    @property
    def inner(self) -> BatchStrategy:
        """The wrapped per-edge strategy."""
        return self._inner

    def _build_layout(self, context: BatchAdversaryContext) -> np.ndarray:
        first_channel: dict[NodeId, int] = {}
        source = np.zeros(len(context.edge_nodes), dtype=int)
        for position, (sender, _receiver) in enumerate(context.edge_nodes):
            source[position] = first_channel.setdefault(sender, position)
        return source

    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        source = self._layout_for(context)
        inner_values = np.asarray(
            self._inner.edge_values(context), dtype=float
        )
        expected = (context.batch_size, len(context.edge_nodes))
        if inner_values.shape != expected:
            raise SimulationError(
                f"inner batch strategy {self._inner.name!r} returned edge "
                f"values of shape {inner_values.shape}; expected {expected}"
            )
        return inner_values[:, source]

    def nominal_values(self, context: BatchAdversaryContext) -> np.ndarray:
        return self._inner.nominal_values(context)


@dataclass(frozen=True)
class _ProbeGroup:
    """One in-degree group of the adaptive strategy's lookahead probe.

    Mirrors the dense engine's ``_DegreeGroup`` but spans **all** fault-free
    receivers (the probe simulates the full round, not just the faulty
    channels): ``in_idx`` gathers the received block, ``edge_index`` /
    ``edge_rows`` / ``edge_slots`` scatter a candidate channel fill into it.
    """

    degree: int
    columns: np.ndarray
    in_idx: np.ndarray
    edge_index: np.ndarray
    edge_rows: np.ndarray
    edge_slots: np.ndarray


class BatchAdaptiveStrategy(_ChannelLayoutStrategy):
    """Adaptive worst-case adversary: observe the batch state, pick the push
    that keeps the fault-free spread widest.

    Three candidate fills are considered each round, all built from the
    fault-free extremes ``U[t−1]`` / ``µ[t−1]``:

    * ``split`` — the :class:`BatchExtremePushStrategy` arithmetic
      (``U + delta`` into receivers at or above the fault-free midpoint,
      ``µ − delta`` into the rest);
    * ``high`` — ``U + delta`` on every channel;
    * ``low`` — ``µ − delta`` on every channel.

    ``mode="greedy"`` picks between all-high and all-low by majority: if at
    least as many fault-free states sit at or above the midpoint as below,
    push high (drag the minority up is hopeless, so reinforce the crowded
    side), else push low.  No probe round is simulated.

    ``mode="lookahead"`` (default) simulates one full trimmed round per
    candidate — the 1-lookahead — and keeps, per batch row, the candidate
    whose post-round fault-free spread is largest (ties break toward
    ``split``, then ``high``).  The probe replays the engines' exact kernel
    (sort, trim ``[f : d − f]``, own-first sequential mean or midpoint, per
    ``rule_mode``) and honours ``context.active_edge_mask`` on faulty
    channels (a down channel self-substitutes, exactly as the engine will).
    Fault-free-sender edges are assumed up and all receivers awake in the
    probe — a documented approximation: under heavy churn the lookahead
    scores are estimates, but every returned fill is still applied by the
    engine with the true masks.

    The strategy draws no randomness: its choice is a pure function of the
    round's state, so runs are deterministic and the dense and sparse
    engines agree bit-for-bit (there is no scalar counterpart).

    Parameters
    ----------
    mode:
        ``"lookahead"`` (default) or ``"greedy"``.
    delta:
        How far beyond the fault-free extremes to push (``>= 0``).
    rule_mode:
        ``"mean"`` (default) or ``"midpoint"`` — must match the engine's
        update rule for the lookahead to replay the kernel faithfully.
    """

    #: The probe layout derives only from the channel order, never from the
    #: round's mask (the mask is applied per probe call), so the inherited
    #: mask-insensitive cache key is correct.
    mask_sensitive = False

    def __init__(
        self,
        mode: str = "lookahead",
        delta: float = 1.0,
        rule_mode: str = "mean",
    ) -> None:
        super().__init__()
        if mode not in ("greedy", "lookahead"):
            raise InvalidParameterError(
                f"mode must be 'greedy' or 'lookahead', got {mode!r}"
            )
        if rule_mode not in ("mean", "midpoint"):
            raise InvalidParameterError(
                f"rule_mode must be 'mean' or 'midpoint', got {rule_mode!r}"
            )
        if delta < 0:
            raise InvalidParameterError(f"delta must be >= 0, got {delta}")
        self._mode = mode
        self._delta = float(delta)
        self._rule_mode = rule_mode
        self.name = f"batch-adaptive({mode})"

    @property
    def mode(self) -> str:
        """The decision mode: ``"greedy"`` or ``"lookahead"``."""
        return self._mode

    @property
    def delta(self) -> float:
        """How far beyond the fault-free extremes the adversary pushes."""
        return self._delta

    def _build_layout(self, context: BatchAdversaryContext) -> tuple[_ProbeGroup, ...]:
        column_of = {node: c for c, node in enumerate(context.nodes)}
        channel_index = {
            edge: position for position, edge in enumerate(context.edge_nodes)
        }
        by_degree: dict[int, dict[str, list]] = {}
        for column in context.fault_free_columns:
            receiver = context.nodes[int(column)]
            senders = sorted(context.graph.in_neighbors(receiver), key=repr)
            group = by_degree.setdefault(
                len(senders),
                {"cols": [], "in_idx": [], "edge_index": [], "rows": [], "slots": []},
            )
            row = len(group["cols"])
            group["cols"].append(int(column))
            group["in_idx"].append([column_of[s] for s in senders])
            for slot, sender in enumerate(senders):
                channel = channel_index.get((sender, receiver))
                if channel is not None:
                    group["edge_index"].append(channel)
                    group["rows"].append(row)
                    group["slots"].append(slot)
        groups = []
        for degree in sorted(by_degree):
            group = by_degree[degree]
            groups.append(
                _ProbeGroup(
                    degree=degree,
                    columns=np.array(group["cols"], dtype=int),
                    in_idx=np.array(group["in_idx"], dtype=int).reshape(
                        len(group["cols"]), degree
                    ),
                    edge_index=np.array(group["edge_index"], dtype=int),
                    edge_rows=np.array(group["rows"], dtype=int),
                    edge_slots=np.array(group["slots"], dtype=int),
                )
            )
        return tuple(groups)

    def _probe(
        self,
        context: BatchAdversaryContext,
        fill: np.ndarray,
        groups: tuple[_ProbeGroup, ...],
    ) -> np.ndarray:
        """Simulate one trimmed round under ``fill``; return the ``(B,)``
        post-round fault-free spread."""
        state = context.state
        f = context.f
        mask = context.active_edge_mask
        batch = context.batch_size
        low = np.full(batch, np.inf)
        high = np.full(batch, -np.inf)
        for group in groups:
            received = state[:, group.in_idx]
            if group.edge_index.size:
                received[:, group.edge_rows, group.edge_slots] = fill[
                    :, group.edge_index
                ]
                if mask is not None:
                    bad = ~mask[group.edge_index]
                    if bad.any():
                        received[:, group.edge_rows[bad], group.edge_slots[bad]] = (
                            state[:, group.columns[group.edge_rows[bad]]]
                        )
            received.sort(axis=-1)
            survivors = received[:, :, f : group.degree - f]
            own = state[:, group.columns]
            if self._rule_mode == "mean":
                full = np.concatenate([own[:, :, None], survivors], axis=2)
                values = np.cumsum(full, axis=2)[:, :, -1] / float(full.shape[2])
            else:  # midpoint
                mins = np.minimum(own, survivors.min(axis=2, initial=np.inf))
                maxs = np.maximum(own, survivors.max(axis=2, initial=-np.inf))
                values = (mins + maxs) / 2.0
            low = np.minimum(low, values.min(axis=1))
            high = np.maximum(high, values.max(axis=1))
        return high - low

    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        batch = context.batch_size
        channels = len(context.edge_nodes)
        if channels == 0:
            return np.zeros((batch, 0))
        upper = context.fault_free_max
        lower = context.fault_free_min
        midpoint = (upper + lower) / 2.0
        high_value = upper + self._delta
        low_value = lower - self._delta
        high_fill = np.broadcast_to(high_value[:, None], (batch, channels))
        low_fill = np.broadcast_to(low_value[:, None], (batch, channels))

        if self._mode == "greedy":
            fault_free = context.fault_free_states
            above = (fault_free >= midpoint[:, None]).sum(axis=1)
            below = fault_free.shape[1] - above
            return np.where((above >= below)[:, None], high_fill, low_fill)

        receiver_state = context.state[:, context.edge_target_columns]
        split_fill = np.where(
            receiver_state >= midpoint[:, None],
            high_value[:, None],
            low_value[:, None],
        )
        groups = self._layout_for(context)
        spreads = np.stack(
            [
                self._probe(context, fill, groups)
                for fill in (split_fill, high_fill, low_fill)
            ]
        )
        best = np.argmax(spreads, axis=0)  # ties break toward split, then high
        out = split_fill.copy()
        rows_high = best == 1
        if rows_high.any():
            out[rows_high] = high_fill[rows_high]
        rows_low = best == 2
        if rows_low.any():
            out[rows_low] = low_fill[rows_low]
        return out


class ScalarStrategyAdapter(BatchStrategy):
    """Drive any scalar :class:`ByzantineStrategy` against the batch engine.

    Parameters
    ----------
    strategy:
        A single strategy instance shared by every batch row.  Correct for
        stateless strategies and for ``B = 1`` (the equivalence mode); a
        strategy declaring ``batch_safe = False`` (e.g.
        ``FrozenValueStrategy``, whose per-node state would leak across
        rows) is rejected for ``B > 1``.
    factory:
        Alternatively, a zero-argument callable producing a fresh strategy
        per batch row, which makes stateful strategies safe at any ``B``.
        Exactly one of ``strategy`` / ``factory`` must be given.

    Notes
    -----
    Per row the adapter builds a scalar
    :class:`~repro.adversary.base.AdversaryContext` and interrogates the
    strategy in the same order as
    :meth:`repro.simulation.engine.SynchronousEngine.step` — all
    ``outgoing_values`` calls (faulty senders in canonical repr-sorted
    order) before any ``nominal_value`` call — so RNG-backed strategies
    consume draws identically and ``B = 1`` runs are bit-exact with the
    scalar engine.
    """

    def __init__(
        self,
        strategy: ByzantineStrategy | None = None,
        factory: Callable[[], ByzantineStrategy] | None = None,
    ) -> None:
        if (strategy is None) == (factory is None):
            raise InvalidParameterError(
                "exactly one of 'strategy' and 'factory' must be provided"
            )
        self._shared = strategy
        self._factory = factory
        self._per_row: dict[int, ByzantineStrategy] = {}
        inner_name = strategy.name if strategy is not None else "per-row"
        self.name = f"scalar-adapter({inner_name})"

    def _strategy_for_row(self, row: int) -> ByzantineStrategy:
        if self._shared is not None:
            return self._shared
        if row not in self._per_row:
            assert self._factory is not None
            self._per_row[row] = self._factory()
        return self._per_row[row]

    def _check_batch_safety(self, batch: int) -> None:
        """Refuse to leak one execution's strategy state into another.

        A shared instance whose strategy declares ``batch_safe = False``
        (e.g. ``FrozenValueStrategy``) would make rows 1..B−1 simulate
        against row 0's state; demand the per-row ``factory`` mode instead.
        """
        if batch > 1 and self._shared is not None and not self._shared.batch_safe:
            raise InvalidParameterError(
                f"strategy {self._shared.name!r} keeps per-execution state and "
                f"cannot be shared across a batch of {batch} executions; pass "
                "ScalarStrategyAdapter(factory=...) to give each batch row its "
                "own instance"
            )

    def _scalar_context(
        self, context: BatchAdversaryContext, row: int
    ) -> AdversaryContext:
        return AdversaryContext(
            graph=context.graph,
            round_index=context.round_index,
            values=context.values_for_row(row),
            faulty=context.faulty,
            f=context.f,
        )

    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        batch = context.batch_size
        self._check_batch_safety(batch)
        out = np.empty((batch, len(context.edge_nodes)), dtype=float)
        # Channel columns grouped by sender so one outgoing_values call per
        # faulty node fills all of that node's channels.
        by_sender: dict[NodeId, list[int]] = {}
        for index, (sender, _target) in enumerate(context.edge_nodes):
            by_sender.setdefault(sender, []).append(index)
        for row in range(batch):
            scalar_context = self._scalar_context(context, row)
            strategy = self._strategy_for_row(row)
            # Canonical (repr-sorted) sender order — the scalar engines'
            # call order (relevant for RNG-consuming strategies).
            for sender in sorted(context.faulty, key=repr):
                outgoing = strategy.outgoing_values(sender, scalar_context)
                missing = context.graph.out_neighbors(sender) - outgoing.keys()
                if missing:
                    raise SimulationError(
                        f"adversary strategy {strategy.name!r} did not provide "
                        f"values for edges {sorted(missing, key=repr)!r} out of "
                        f"faulty node {sender!r}; the synchronous model has no "
                        "omissions"
                    )
                for index in by_sender.get(sender, ()):
                    _source, target = context.edge_nodes[index]
                    out[row, index] = float(outgoing[target])
        return out

    def nominal_values(self, context: BatchAdversaryContext) -> np.ndarray:
        batch = context.batch_size
        self._check_batch_safety(batch)
        faulty_ordered = [context.nodes[c] for c in context.faulty_columns]
        out = np.empty((batch, len(faulty_ordered)), dtype=float)
        for row in range(batch):
            scalar_context = self._scalar_context(context, row)
            strategy = self._strategy_for_row(row)
            for position, node in enumerate(faulty_ordered):
                out[row, position] = float(
                    strategy.nominal_value(node, scalar_context)
                )
        return out


def as_batch_strategy(
    adversary: BatchStrategy | ByzantineStrategy | None,
) -> BatchStrategy:
    """Coerce an adversary argument to a :class:`BatchStrategy`.

    ``None`` becomes :class:`BatchPassiveStrategy` (faulty nodes follow the
    protocol), scalar strategies are wrapped in a shared-instance
    :class:`ScalarStrategyAdapter`, and batch strategies pass through.
    """
    if adversary is None:
        return BatchPassiveStrategy()
    if isinstance(adversary, BatchStrategy):
        return adversary
    if isinstance(adversary, ByzantineStrategy):
        return ScalarStrategyAdapter(strategy=adversary)
    raise InvalidParameterError(
        f"expected a BatchStrategy, ByzantineStrategy or None, "
        f"got {type(adversary).__name__}"
    )
