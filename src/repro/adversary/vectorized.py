"""Batched Byzantine adversary interface for the vectorized engine.

The scalar engines interrogate a :class:`~repro.adversary.base.ByzantineStrategy`
one faulty node at a time through per-node Python dicts.  The vectorized
engine (:mod:`repro.simulation.vectorized`) instead works on a ``(B, n)``
state matrix covering ``B`` independent executions at once, so its adversary
hook is batched as well: once per round the engine asks the strategy for the
value on **every** faulty→fault-free channel of **every** batched execution
in a single call returning a ``(B, E_f)`` array.

Two bridges make the existing strategy zoo usable against the fast engine:

* :class:`ScalarStrategyAdapter` wraps any scalar
  :class:`~repro.adversary.base.ByzantineStrategy` (including the stateful and
  randomized ones in :mod:`repro.adversary.strategies`) and replays it per
  batch row.  With ``B = 1`` the adapter reproduces the scalar engine's calls
  exactly — including call order and RNG consumption — which is what the
  round-for-round equivalence mode relies on.
* :class:`BatchExtremePushStrategy` is a natively vectorized re-implementation
  of :class:`~repro.adversary.strategies.ExtremePushStrategy` whose arithmetic
  is bit-for-bit identical to the scalar version while running whole batches
  per round.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.adversary.base import AdversaryContext, ByzantineStrategy
from repro.exceptions import InvalidParameterError, SimulationError
from repro.graphs.digraph import Digraph
from repro.types import NodeId


@dataclass(frozen=True)
class BatchAdversaryContext:
    """Complete system knowledge handed to a batch strategy each round.

    Mirrors :class:`~repro.adversary.base.AdversaryContext` but exposes the
    state of all ``B`` executions as arrays instead of one execution as dicts.

    Attributes
    ----------
    graph:
        The communication graph (shared by every execution in the batch).
    round_index:
        The iteration ``t`` about to be executed.
    state:
        ``(B, n)`` array: ``state[b, c]`` is node ``nodes[c]``'s value
        ``v[t − 1]`` in execution ``b``.  Treat it as read-only.
    nodes:
        Column order of ``state`` (nodes sorted by ``repr``).
    faulty:
        The Byzantine node set ``F``.
    f:
        The fault budget the fault-free nodes defend against.
    faulty_columns:
        Columns of ``state`` occupied by faulty nodes.
    fault_free_columns:
        Columns of ``state`` occupied by fault-free nodes.
    edge_nodes:
        The faulty→fault-free channels ``(sender, receiver)`` the strategy
        must fill, in the order the returned value matrix is interpreted.
    edge_source_columns / edge_target_columns:
        The same channels as column indices into ``state``.
    """

    graph: Digraph
    round_index: int
    state: np.ndarray
    nodes: tuple[NodeId, ...]
    faulty: frozenset[NodeId]
    f: int
    faulty_columns: np.ndarray
    fault_free_columns: np.ndarray
    edge_nodes: tuple[tuple[NodeId, NodeId], ...]
    edge_source_columns: np.ndarray
    edge_target_columns: np.ndarray

    @property
    def batch_size(self) -> int:
        """Number of independent executions ``B`` in the batch."""
        return int(self.state.shape[0])

    @property
    def fault_free_states(self) -> np.ndarray:
        """``(B, n − |F|)`` view of the fault-free nodes' states."""
        return self.state[:, self.fault_free_columns]

    @property
    def fault_free_max(self) -> np.ndarray:
        """``U[t − 1]`` per execution: shape ``(B,)``."""
        return self.fault_free_states.max(axis=1)

    @property
    def fault_free_min(self) -> np.ndarray:
        """``µ[t − 1]`` per execution: shape ``(B,)``."""
        return self.fault_free_states.min(axis=1)

    def values_for_row(self, row: int) -> dict[NodeId, float]:
        """Return execution ``row``'s state as a scalar-style value map."""
        return {
            node: float(self.state[row, column])
            for column, node in enumerate(self.nodes)
        }


class BatchStrategy(ABC):
    """Behaviour of the faulty nodes across a whole batch of executions.

    One instance controls all faulty nodes in all ``B`` executions; the
    engine calls :meth:`edge_values` once per round.
    """

    #: Human-readable name used in reports and benchmark tables.
    name: str = "batch-strategy"

    @abstractmethod
    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        """Return a ``(B, E_f)`` array of channel values.

        Column ``e`` holds, for every execution, the value the faulty sender
        of ``context.edge_nodes[e]`` places on that channel this round.
        Different channels out of the same faulty node may carry different
        values — the point-to-point equivocation power of the paper's model.
        """

    def nominal_values(self, context: BatchAdversaryContext) -> np.ndarray:
        """Return a ``(B, |F|)`` array of the faulty nodes' nominal states.

        Fault-free nodes never rely on these; they only label trace entries.
        The default keeps each faulty node's previous recorded state, matching
        :meth:`repro.adversary.base.ByzantineStrategy.nominal_value`.
        """
        return np.array(context.state[:, context.faulty_columns])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class BatchPassiveStrategy(BatchStrategy):
    """Faulty nodes that follow the protocol: each channel carries the
    sender's previous state, identically in every execution."""

    name = "batch-passive"

    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        return np.array(context.state[:, context.edge_source_columns])


class BatchExtremePushStrategy(BatchStrategy):
    """Vectorized :class:`~repro.adversary.strategies.ExtremePushStrategy`.

    Per execution: channels into receivers whose state is at or above the
    fault-free midpoint carry ``U[t−1] + delta``; the rest carry
    ``µ[t−1] − delta``.  The arithmetic matches the scalar strategy
    bit-for-bit, so a ``B = 1`` batch reproduces the scalar engine's
    execution exactly.
    """

    name = "batch-extreme-push"

    def __init__(self, delta: float = 1.0) -> None:
        if delta < 0:
            raise InvalidParameterError(f"delta must be >= 0, got {delta}")
        self._delta = float(delta)

    @property
    def delta(self) -> float:
        """How far beyond the fault-free extremes the adversary pushes."""
        return self._delta

    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        upper = context.fault_free_max
        lower = context.fault_free_min
        midpoint = (upper + lower) / 2.0
        high_value = upper + self._delta
        low_value = lower - self._delta
        receiver_state = context.state[:, context.edge_target_columns]
        return np.where(
            receiver_state >= midpoint[:, None],
            high_value[:, None],
            low_value[:, None],
        )


class ScalarStrategyAdapter(BatchStrategy):
    """Drive any scalar :class:`ByzantineStrategy` against the batch engine.

    Parameters
    ----------
    strategy:
        A single strategy instance shared by every batch row.  Correct for
        stateless strategies and for ``B = 1`` (the equivalence mode); a
        strategy declaring ``batch_safe = False`` (e.g.
        ``FrozenValueStrategy``, whose per-node state would leak across
        rows) is rejected for ``B > 1``.
    factory:
        Alternatively, a zero-argument callable producing a fresh strategy
        per batch row, which makes stateful strategies safe at any ``B``.
        Exactly one of ``strategy`` / ``factory`` must be given.

    Notes
    -----
    Per row the adapter builds a scalar
    :class:`~repro.adversary.base.AdversaryContext` and interrogates the
    strategy in the same order as
    :meth:`repro.simulation.engine.SynchronousEngine.step` — all
    ``outgoing_values`` calls (iterating the faulty frozenset) before any
    ``nominal_value`` call — so RNG-backed strategies consume draws
    identically and ``B = 1`` runs are bit-exact with the scalar engine.
    """

    def __init__(
        self,
        strategy: ByzantineStrategy | None = None,
        factory: Callable[[], ByzantineStrategy] | None = None,
    ) -> None:
        if (strategy is None) == (factory is None):
            raise InvalidParameterError(
                "exactly one of 'strategy' and 'factory' must be provided"
            )
        self._shared = strategy
        self._factory = factory
        self._per_row: dict[int, ByzantineStrategy] = {}
        inner_name = strategy.name if strategy is not None else "per-row"
        self.name = f"scalar-adapter({inner_name})"

    def _strategy_for_row(self, row: int) -> ByzantineStrategy:
        if self._shared is not None:
            return self._shared
        if row not in self._per_row:
            assert self._factory is not None
            self._per_row[row] = self._factory()
        return self._per_row[row]

    def _check_batch_safety(self, batch: int) -> None:
        """Refuse to leak one execution's strategy state into another.

        A shared instance whose strategy declares ``batch_safe = False``
        (e.g. ``FrozenValueStrategy``) would make rows 1..B−1 simulate
        against row 0's state; demand the per-row ``factory`` mode instead.
        """
        if batch > 1 and self._shared is not None and not self._shared.batch_safe:
            raise InvalidParameterError(
                f"strategy {self._shared.name!r} keeps per-execution state and "
                f"cannot be shared across a batch of {batch} executions; pass "
                "ScalarStrategyAdapter(factory=...) to give each batch row its "
                "own instance"
            )

    def _scalar_context(
        self, context: BatchAdversaryContext, row: int
    ) -> AdversaryContext:
        return AdversaryContext(
            graph=context.graph,
            round_index=context.round_index,
            values=context.values_for_row(row),
            faulty=context.faulty,
            f=context.f,
        )

    def edge_values(self, context: BatchAdversaryContext) -> np.ndarray:
        batch = context.batch_size
        self._check_batch_safety(batch)
        out = np.empty((batch, len(context.edge_nodes)), dtype=float)
        # Channel columns grouped by sender so one outgoing_values call per
        # faulty node fills all of that node's channels.
        by_sender: dict[NodeId, list[int]] = {}
        for index, (sender, _target) in enumerate(context.edge_nodes):
            by_sender.setdefault(sender, []).append(index)
        for row in range(batch):
            scalar_context = self._scalar_context(context, row)
            strategy = self._strategy_for_row(row)
            # Iterate the frozenset directly to match the scalar engine's
            # per-node call order (relevant for RNG-consuming strategies).
            for sender in context.faulty:
                outgoing = strategy.outgoing_values(sender, scalar_context)
                missing = context.graph.out_neighbors(sender) - outgoing.keys()
                if missing:
                    raise SimulationError(
                        f"adversary strategy {strategy.name!r} did not provide "
                        f"values for edges {sorted(missing, key=repr)!r} out of "
                        f"faulty node {sender!r}; the synchronous model has no "
                        "omissions"
                    )
                for index in by_sender.get(sender, ()):
                    _source, target = context.edge_nodes[index]
                    out[row, index] = float(outgoing[target])
        return out

    def nominal_values(self, context: BatchAdversaryContext) -> np.ndarray:
        batch = context.batch_size
        self._check_batch_safety(batch)
        faulty_ordered = [context.nodes[c] for c in context.faulty_columns]
        out = np.empty((batch, len(faulty_ordered)), dtype=float)
        for row in range(batch):
            scalar_context = self._scalar_context(context, row)
            strategy = self._strategy_for_row(row)
            for position, node in enumerate(faulty_ordered):
                out[row, position] = float(
                    strategy.nominal_value(node, scalar_context)
                )
        return out


def as_batch_strategy(
    adversary: BatchStrategy | ByzantineStrategy | None,
) -> BatchStrategy:
    """Coerce an adversary argument to a :class:`BatchStrategy`.

    ``None`` becomes :class:`BatchPassiveStrategy` (faulty nodes follow the
    protocol), scalar strategies are wrapped in a shared-instance
    :class:`ScalarStrategyAdapter`, and batch strategies pass through.
    """
    if adversary is None:
        return BatchPassiveStrategy()
    if isinstance(adversary, BatchStrategy):
        return adversary
    if isinstance(adversary, ByzantineStrategy):
        return ScalarStrategyAdapter(strategy=adversary)
    raise InvalidParameterError(
        f"expected a BatchStrategy, ByzantineStrategy or None, "
        f"got {type(adversary).__name__}"
    )
