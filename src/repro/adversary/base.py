"""Byzantine adversary abstraction.

The paper's failure model (Section 2.2) gives the adversary full power: up to
``f`` nodes may misbehave arbitrarily, may collude, know the complete state of
every other node and the full algorithm specification, and — because the model
is point-to-point — may send *different* values to different out-neighbours in
the same iteration.

The simulation engines realise this by handing each faulty node's behaviour to
a :class:`ByzantineStrategy`.  Every iteration the engine builds an
:class:`AdversaryContext` exposing the entire system state (exactly the
knowledge the paper grants the adversary) and asks the strategy what value to
place on each outgoing edge of each faulty node.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping

from repro.graphs.digraph import Digraph
from repro.types import NodeId


@dataclass(frozen=True)
class AdversaryContext:
    """Complete system knowledge available to the adversary in one iteration.

    Attributes
    ----------
    graph:
        The communication graph.
    round_index:
        The iteration ``t`` about to be executed (messages carry states from
        the end of iteration ``t − 1``).
    values:
        State ``v_j[t − 1]`` of every node, faulty and fault-free alike.
    faulty:
        The set ``F`` of faulty nodes (so collusive strategies can coordinate).
    f:
        The fault budget the fault-free nodes defend against.
    """

    graph: Digraph
    round_index: int
    values: Mapping[NodeId, float]
    faulty: frozenset[NodeId]
    f: int

    @property
    def fault_free_nodes(self) -> frozenset[NodeId]:
        """All nodes not controlled by the adversary."""
        return self.graph.nodes - self.faulty

    @property
    def fault_free_values(self) -> dict[NodeId, float]:
        """States of the fault-free nodes only."""
        return {
            node: self.values[node]
            for node in self.fault_free_nodes
        }

    @property
    def fault_free_max(self) -> float:
        """``U[t − 1]``: the largest fault-free state."""
        return max(self.fault_free_values.values())

    @property
    def fault_free_min(self) -> float:
        """``µ[t − 1]``: the smallest fault-free state."""
        return min(self.fault_free_values.values())


class ByzantineStrategy(ABC):
    """Behaviour of the faulty nodes.

    One strategy instance controls *all* faulty nodes (the paper allows the
    faulty nodes to collaborate), so a strategy can coordinate what different
    faulty nodes send.
    """

    #: Human-readable name used in reports and benchmark tables.
    name: str = "byzantine-strategy"

    #: Whether one instance may safely serve many batched executions at once.
    #: Strategies that accumulate per-execution state (e.g. a frozen initial
    #: value) must set this to ``False`` so the vectorized engine's shared
    #: adapter refuses to leak one execution's state into another; see
    #: :class:`repro.adversary.vectorized.ScalarStrategyAdapter`.
    batch_safe: bool = True

    @abstractmethod
    def outgoing_values(
        self, node: NodeId, context: AdversaryContext
    ) -> dict[NodeId, float]:
        """Return the value placed on each outgoing edge of faulty ``node``.

        The returned mapping must contain every out-neighbour of ``node``
        (the synchronous model has no omissions: a value is delivered on every
        edge every iteration).  Different out-neighbours may receive different
        values — this is the extra power of the point-to-point model over the
        broadcast model discussed in the related-work section.
        """

    def nominal_value(self, node: NodeId, context: AdversaryContext) -> float:
        """Return the value recorded as the faulty node's "state" in traces.

        Fault-free nodes never rely on this; it exists purely so execution
        traces have an entry for every node.  The default is the node's
        previous recorded state.
        """
        return float(context.values[node])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class PassiveStrategy(ByzantineStrategy):
    """A "faulty" node that behaves exactly like a correct node.

    Useful as a control in experiments: with a passive adversary the system
    must behave identically to the fault-free execution on the same graph.
    """

    name = "passive"

    def outgoing_values(
        self, node: NodeId, context: AdversaryContext
    ) -> dict[NodeId, float]:
        value = float(context.values[node])
        return {neighbor: value for neighbor in context.graph.out_neighbors(node)}
