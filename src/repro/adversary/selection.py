"""Fault-set selection policies.

Given a graph and a fault budget ``f``, these helpers choose *which* nodes the
adversary corrupts.  The paper's analysis holds for every fault set of size at
most ``f``; experiments use different selections to probe worst-ish cases:

* :func:`random_fault_set` — uniform random choice (the default in sweeps),
* :func:`highest_in_degree_fault_set` / :func:`highest_out_degree_fault_set` —
  corrupt the most influential nodes,
* :func:`fault_set_from_witness` — corrupt exactly the set ``F`` of a
  Theorem-1 violating partition, which is what the necessity-proof attack
  requires.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FaultBudgetExceededError, InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.types import NodeId, PartitionWitness


def _validate_budget(graph: Digraph, f: int, size: int) -> None:
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    if size > f:
        raise FaultBudgetExceededError(size, f)
    if size > graph.number_of_nodes:
        raise InvalidParameterError(
            f"cannot select {size} faulty nodes from a graph with "
            f"{graph.number_of_nodes} nodes"
        )


def random_fault_set(
    graph: Digraph,
    f: int,
    size: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> frozenset[NodeId]:
    """Return a uniformly random fault set of ``size`` nodes (default ``f``)."""
    target_size = f if size is None else size
    _validate_budget(graph, f, target_size)
    if target_size == 0:
        return frozenset()
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    nodes = sorted(graph.nodes, key=repr)
    chosen = generator.choice(len(nodes), size=target_size, replace=False)
    return frozenset(nodes[int(index)] for index in chosen)


def highest_in_degree_fault_set(
    graph: Digraph, f: int, size: int | None = None
) -> frozenset[NodeId]:
    """Return the ``size`` nodes with largest in-degree (ties by repr)."""
    target_size = f if size is None else size
    _validate_budget(graph, f, target_size)
    ranked = sorted(graph.nodes, key=lambda node: (-graph.in_degree(node), repr(node)))
    return frozenset(ranked[:target_size])


def highest_out_degree_fault_set(
    graph: Digraph, f: int, size: int | None = None
) -> frozenset[NodeId]:
    """Return the ``size`` nodes with largest out-degree (ties by repr).

    Out-degree measures how many fault-free nodes a corrupted node can lie to
    directly, so this is usually the most damaging degree-based selection.
    """
    target_size = f if size is None else size
    _validate_budget(graph, f, target_size)
    ranked = sorted(graph.nodes, key=lambda node: (-graph.out_degree(node), repr(node)))
    return frozenset(ranked[:target_size])


def fault_set_from_witness(witness: PartitionWitness, f: int) -> frozenset[NodeId]:
    """Return the fault set ``F`` of a violating partition, validating ``|F| ≤ f``."""
    if f < 0:
        raise InvalidParameterError(f"f must be >= 0, got {f}")
    if len(witness.faulty) > f:
        raise FaultBudgetExceededError(len(witness.faulty), f)
    return witness.faulty
