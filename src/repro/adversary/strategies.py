"""Concrete Byzantine behaviour strategies.

The strategies range from benign (frozen value) through generic disruption
(static extremes, random noise, extreme pushing) to the paper-specific
*split-brain* attack used in the necessity proof of Theorem 1: send values
below the minimum to one side of a violating partition and values above the
maximum to the other side, so the two sides can never approach each other.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import AdversaryContext, ByzantineStrategy
from repro.exceptions import InvalidParameterError
from repro.types import NodeId, PartitionWitness


class StaticValueStrategy(ByzantineStrategy):
    """Send the same constant value on every outgoing edge, every iteration."""

    name = "static-value"

    def __init__(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        """The constant value sent on every edge."""
        return self._value

    def outgoing_values(
        self, node: NodeId, context: AdversaryContext
    ) -> dict[NodeId, float]:
        return {
            neighbor: self._value
            for neighbor in context.graph.out_neighbors(node)
        }

    def nominal_value(self, node: NodeId, context: AdversaryContext) -> float:
        return self._value


class FrozenValueStrategy(ByzantineStrategy):
    """Keep sending the node's *initial* state forever (a stuck node).

    This models the mildest deviation from the protocol: the node never
    updates.  It is a useful control because a correct algorithm tolerating
    Byzantine faults must certainly tolerate stuck nodes.
    """

    name = "frozen-value"
    # The frozen values are per-execution state: sharing one instance across
    # batch rows would freeze every row at the first row's inputs.
    batch_safe = False

    def __init__(self) -> None:
        self._frozen: dict[NodeId, float] = {}

    def _freeze(self, node: NodeId, context: AdversaryContext) -> float:
        """Freeze ``node`` at its current state on first access, from either
        entry point — otherwise a ``nominal_value`` call arriving before
        ``outgoing_values`` would report a later state than the one actually
        sent on the edges."""
        if node not in self._frozen:
            self._frozen[node] = float(context.values[node])
        return self._frozen[node]

    def outgoing_values(
        self, node: NodeId, context: AdversaryContext
    ) -> dict[NodeId, float]:
        value = self._freeze(node, context)
        return {neighbor: value for neighbor in context.graph.out_neighbors(node)}

    def nominal_value(self, node: NodeId, context: AdversaryContext) -> float:
        return self._freeze(node, context)


class RandomNoiseStrategy(ByzantineStrategy):
    """Send independent uniform random values, per edge and per iteration.

    Each outgoing edge gets a fresh draw from ``[low, high]``, so different
    neighbours receive different (mismatching) values — exploiting the
    point-to-point model.
    """

    name = "random-noise"
    # The generator is mutable shared state: rows of a batch sharing one
    # instance would draw from one stream, making each row's noise depend on
    # which other rows are present (per-row reproducibility would be lost).
    batch_safe = False

    def __init__(
        self,
        low: float,
        high: float,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if high < low:
            raise InvalidParameterError(
                f"high ({high}) must be >= low ({low}) for random noise"
            )
        self._low = float(low)
        self._high = float(high)
        self._rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )

    def outgoing_values(
        self, node: NodeId, context: AdversaryContext
    ) -> dict[NodeId, float]:
        neighbors = sorted(context.graph.out_neighbors(node), key=repr)
        draws = self._rng.uniform(self._low, self._high, size=len(neighbors))
        return {neighbor: float(draw) for neighbor, draw in zip(neighbors, draws)}


class ExtremePushStrategy(ByzantineStrategy):
    """Try to keep the fault-free spread as wide as possible.

    Every iteration, each faulty node sends ``U[t−1] + delta`` to the
    out-neighbours whose state is in the upper half of the fault-free range
    and ``µ[t−1] − delta`` to the rest — pulling high nodes higher and low
    nodes lower.  Against Algorithm 1 these values are always trimmed away
    (or sandwiched by fault-free values), which is exactly the behaviour the
    validity proof (Theorem 2) accounts for.
    """

    name = "extreme-push"

    def __init__(self, delta: float = 1.0) -> None:
        if delta < 0:
            raise InvalidParameterError(f"delta must be >= 0, got {delta}")
        self._delta = float(delta)

    def outgoing_values(
        self, node: NodeId, context: AdversaryContext
    ) -> dict[NodeId, float]:
        upper = context.fault_free_max
        lower = context.fault_free_min
        midpoint = (upper + lower) / 2.0
        high_value = upper + self._delta
        low_value = lower - self._delta
        values: dict[NodeId, float] = {}
        for neighbor in context.graph.out_neighbors(node):
            neighbor_state = float(context.values.get(neighbor, midpoint))
            values[neighbor] = high_value if neighbor_state >= midpoint else low_value
        return values


def split_brain_recommended_inputs(
    witness: PartitionWitness, low_value: float, high_value: float
) -> dict[NodeId, float]:
    """Return the necessity-proof input assignment for a violating partition.

    Nodes in ``L`` get ``m = low_value``, nodes in ``R`` get
    ``M = high_value``, nodes in ``C`` get the midpoint, and faulty nodes
    get the midpoint as their nominal input — shared by the scalar and
    batch-native split-brain strategies so the two attacks can never
    desynchronize.
    """
    midpoint = (low_value + high_value) / 2.0
    inputs: dict[NodeId, float] = {}
    for node in witness.left:
        inputs[node] = low_value
    for node in witness.right:
        inputs[node] = high_value
    for node in witness.center:
        inputs[node] = midpoint
    for node in witness.faulty:
        inputs[node] = midpoint
    return inputs


class SplitBrainStrategy(ByzantineStrategy):
    """The attack from the necessity proof of Theorem 1.

    Given a violating partition ``F, L, C, R`` (a
    :class:`~repro.types.PartitionWitness`), the faulty nodes send

    * ``m⁻ = low_value − margin`` to their out-neighbours in ``L``,
    * ``M⁺ = high_value + margin`` to their out-neighbours in ``R``, and
    * the midpoint of ``[low_value, high_value]`` to out-neighbours in ``C``
      (any value in the range would do).

    Combined with inputs ``m`` on ``L``, ``M`` on ``R`` and values in
    ``[m, M]`` on ``C``, the proof shows every validity-respecting iterative
    algorithm must keep ``L`` stuck at ``m`` and ``R`` stuck at ``M`` forever,
    so convergence is impossible.  The strategy is what experiment E1 uses to
    demonstrate non-convergence on graphs that fail the condition.
    """

    name = "split-brain"

    def __init__(
        self,
        witness: PartitionWitness,
        low_value: float,
        high_value: float,
        margin: float = 1.0,
    ) -> None:
        if high_value <= low_value:
            raise InvalidParameterError(
                f"high_value ({high_value}) must exceed low_value ({low_value})"
            )
        if margin <= 0:
            raise InvalidParameterError(f"margin must be > 0, got {margin}")
        self._witness = witness
        self._low = float(low_value)
        self._high = float(high_value)
        self._margin = float(margin)

    @property
    def witness(self) -> PartitionWitness:
        """The violating partition the attack is built around."""
        return self._witness

    def recommended_inputs(self) -> dict[NodeId, float]:
        """Return the input assignment used by the necessity proof
        (see :func:`split_brain_recommended_inputs`)."""
        return split_brain_recommended_inputs(self._witness, self._low, self._high)

    def outgoing_values(
        self, node: NodeId, context: AdversaryContext
    ) -> dict[NodeId, float]:
        midpoint = (self._low + self._high) / 2.0
        below = self._low - self._margin
        above = self._high + self._margin
        values: dict[NodeId, float] = {}
        for neighbor in context.graph.out_neighbors(node):
            if neighbor in self._witness.left:
                values[neighbor] = below
            elif neighbor in self._witness.right:
                values[neighbor] = above
            else:
                values[neighbor] = midpoint
        return values

    def nominal_value(self, node: NodeId, context: AdversaryContext) -> float:
        return (self._low + self._high) / 2.0


class BroadcastConsistentStrategy(ByzantineStrategy):
    """Force an inner strategy to behave under the *broadcast* model.

    Under the broadcast model (Sundaram & Hadjicostis, LeBlanc et al.) a
    faulty node may lie but must send the **same** value to all of its
    out-neighbours.  This wrapper runs any inner strategy and collapses its
    per-edge values to a single value, letting experiments quantify how much
    power the adversary loses when it cannot equivocate.

    The chosen value is the one the inner strategy destined for the node's
    ``repr``-smallest *fault-free* out-neighbour (values sent to faulty
    neighbours never influence the dynamics — faulty nodes ignore their
    inputs — so canonicalising on a fault-free edge keeps the collapse
    meaningful and matches the batch-native
    :class:`~repro.adversary.vectorized.BatchBroadcastConsistentWrapper`,
    whose channel matrix only covers faulty→fault-free edges).  When every
    out-neighbour is faulty the smallest out-neighbour overall is used.
    """

    name = "broadcast-consistent"

    def __init__(self, inner: ByzantineStrategy) -> None:
        self._inner = inner
        self.name = f"broadcast({inner.name})"
        self.batch_safe = inner.batch_safe

    def outgoing_values(
        self, node: NodeId, context: AdversaryContext
    ) -> dict[NodeId, float]:
        per_edge = self._inner.outgoing_values(node, context)
        neighbors = sorted(context.graph.out_neighbors(node), key=repr)
        if not neighbors:
            return {}
        missing = [n for n in neighbors if n not in per_edge]
        if missing:
            raise InvalidParameterError(
                f"inner strategy {self._inner.name!r} omitted out-neighbours "
                f"{missing!r} of faulty node {node!r}; the broadcast wrapper "
                "needs a value for every outgoing edge"
            )
        fault_free = [n for n in neighbors if n not in context.faulty]
        chosen = per_edge[fault_free[0] if fault_free else neighbors[0]]
        return {neighbor: chosen for neighbor in neighbors}

    def nominal_value(self, node: NodeId, context: AdversaryContext) -> float:
        return self._inner.nominal_value(node, context)
