"""Byzantine adversary substrate: strategy interface, concrete behaviours and
fault-set selection policies."""

from repro.adversary.base import AdversaryContext, ByzantineStrategy, PassiveStrategy
from repro.adversary.selection import (
    fault_set_from_witness,
    highest_in_degree_fault_set,
    highest_out_degree_fault_set,
    random_fault_set,
)
from repro.adversary.strategies import (
    BroadcastConsistentStrategy,
    ExtremePushStrategy,
    FrozenValueStrategy,
    RandomNoiseStrategy,
    SplitBrainStrategy,
    StaticValueStrategy,
)

__all__ = [
    "AdversaryContext",
    "ByzantineStrategy",
    "PassiveStrategy",
    "BroadcastConsistentStrategy",
    "ExtremePushStrategy",
    "FrozenValueStrategy",
    "RandomNoiseStrategy",
    "SplitBrainStrategy",
    "StaticValueStrategy",
    "fault_set_from_witness",
    "highest_in_degree_fault_set",
    "highest_out_degree_fault_set",
    "random_fault_set",
]
