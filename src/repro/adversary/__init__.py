"""Byzantine adversary substrate: strategy interface, concrete behaviours and
fault-set selection policies."""

from repro.adversary.base import AdversaryContext, ByzantineStrategy, PassiveStrategy
from repro.adversary.selection import (
    fault_set_from_witness,
    highest_in_degree_fault_set,
    highest_out_degree_fault_set,
    random_fault_set,
)
from repro.adversary.strategies import (
    BroadcastConsistentStrategy,
    ExtremePushStrategy,
    FrozenValueStrategy,
    RandomNoiseStrategy,
    SplitBrainStrategy,
    StaticValueStrategy,
)
from repro.adversary.vectorized import (
    BatchAdaptiveStrategy,
    BatchAdversaryContext,
    BatchBroadcastConsistentWrapper,
    BatchExtremePushStrategy,
    BatchFrozenValueStrategy,
    BatchPassiveStrategy,
    BatchRandomNoiseStrategy,
    BatchSplitBrainStrategy,
    BatchStaticValueStrategy,
    BatchStrategy,
    ScalarStrategyAdapter,
    as_batch_strategy,
)

__all__ = [
    "BatchAdaptiveStrategy",
    "BatchAdversaryContext",
    "BatchBroadcastConsistentWrapper",
    "BatchExtremePushStrategy",
    "BatchFrozenValueStrategy",
    "BatchPassiveStrategy",
    "BatchRandomNoiseStrategy",
    "BatchSplitBrainStrategy",
    "BatchStaticValueStrategy",
    "BatchStrategy",
    "ScalarStrategyAdapter",
    "as_batch_strategy",
    "AdversaryContext",
    "ByzantineStrategy",
    "PassiveStrategy",
    "BroadcastConsistentStrategy",
    "ExtremePushStrategy",
    "FrozenValueStrategy",
    "RandomNoiseStrategy",
    "SplitBrainStrategy",
    "StaticValueStrategy",
    "fault_set_from_witness",
    "highest_in_degree_fault_set",
    "highest_out_degree_fault_set",
    "random_fault_set",
]
