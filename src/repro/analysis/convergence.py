"""Convergence-rate analysis: the paper's bounds and empirical estimates.

The quantitative content of the sufficiency proof is:

* ``α = min_i a_i`` (eq. 3) where ``a_i = 1 / (|N⁻_i| + 1 − 2f)`` for
  Algorithm 1;
* Lemma 5: if at time ``s`` the fault-free nodes split into ``R`` (whose
  states span at most half the current spread) and ``L`` with ``R``
  propagating to ``L`` in ``l`` steps, then
  ``U[s + l] − µ[s + l] ≤ (1 − αˡ/2)(U[s] − µ[s])``;
* Theorem 3 iterates this bound over windows (eq. 22), giving geometric decay
  of the spread with per-window factor at most ``1 − α^{l} / 2`` and window
  length ``l ≤ n − f − 1``.

This module computes the analytical quantities (α, propagation windows, the
per-window factor, a bound on the number of rounds to reach a target spread)
and compares them against measured traces (used by experiment E7 and by the
regression tests that assert the measured contraction never beats the proof's
direction of the inequality... i.e. never violates it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.algorithms.base import UpdateRule
from repro.conditions.relations import propagates
from repro.exceptions import InvalidParameterError, NotApplicableError
from repro.graphs.digraph import Digraph
from repro.types import NodeId, RoundRecord


# ---------------------------------------------------------------------------
# Analytical quantities
# ---------------------------------------------------------------------------
def alpha_for_rule(
    graph: Digraph,
    rule: UpdateRule,
    fault_free: frozenset[NodeId] | None = None,
) -> float:
    """Return ``α = min_i a_i`` over the fault-free nodes (paper eq. 3).

    Raises :class:`~repro.exceptions.NotApplicableError` for rules without a
    weight floor (e.g. the midpoint rule), for which the paper's analysis does
    not apply.
    """
    nodes = sorted(graph.nodes if fault_free is None else fault_free, key=repr)
    value = rule.alpha(graph, nodes=nodes)
    if value is None:
        raise NotApplicableError(
            f"rule {rule.name!r} has no weight floor; α is undefined"
        )
    return value


def lemma5_contraction_factor(alpha: float, steps: int) -> float:
    """Return the Lemma-5 per-window contraction factor ``1 − α^steps / 2``."""
    if not 0 < alpha <= 1:
        raise InvalidParameterError(f"alpha must be in (0, 1], got {alpha}")
    if steps < 1:
        raise InvalidParameterError(f"steps must be >= 1, got {steps}")
    return 1.0 - (alpha**steps) / 2.0


def worst_case_window_length(n: int, f: int) -> int:
    """Return the paper's bound ``l ≤ n − f − 1`` on the propagation length."""
    if n < 2:
        raise InvalidParameterError(f"n must be >= 2, got {n}")
    if f < 0 or n - f - 1 < 1:
        raise InvalidParameterError(
            f"need at least f + 2 nodes for a meaningful window; got n={n}, f={f}"
        )
    return n - f - 1


def rounds_to_reach(
    initial_spread: float,
    target_spread: float,
    alpha: float,
    window_length: int,
) -> int:
    """Return an upper bound on the number of iterations needed to shrink the
    fault-free spread from ``initial_spread`` to ``target_spread``.

    Derived from iterating Lemma 5 with a fixed window length: after ``k``
    windows the spread is at most
    ``(1 − α^window_length / 2)^k · initial_spread``; the bound returned is
    ``k · window_length`` for the smallest sufficient ``k``.
    """
    if initial_spread < 0 or target_spread < 0:
        raise InvalidParameterError("spreads must be non-negative")
    if target_spread == 0:
        raise InvalidParameterError(
            "target_spread must be positive (exact agreement is only reached "
            "in the limit)"
        )
    if initial_spread <= target_spread:
        return 0
    factor = lemma5_contraction_factor(alpha, window_length)
    if factor >= 1.0:
        raise NotApplicableError(
            "contraction factor is 1; the bound gives no finite round count"
        )
    windows = math.ceil(
        math.log(target_spread / initial_spread) / math.log(factor)
    )
    return int(windows) * window_length


# ---------------------------------------------------------------------------
# Per-window verification against a measured trace (Theorem 3's argument)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WindowCheck:
    """One application of Lemma 5 along a measured trace.

    Attributes
    ----------
    start_round:
        The window's starting iteration ``s``.
    window_length:
        The propagation length ``l(s)`` of the partition chosen at ``s``.
    bound_factor:
        The analytical factor ``1 − α^{l(s)} / 2``.
    measured_factor:
        The measured contraction ``(U[s+l] − µ[s+l]) / (U[s] − µ[s])``.
    satisfied:
        Whether the measured contraction respects the bound
        (``measured_factor ≤ bound_factor`` up to numerical slack).
    """

    start_round: int
    window_length: int
    bound_factor: float
    measured_factor: float
    satisfied: bool


def _midpoint_partition(
    record: RoundRecord, fault_free: frozenset[NodeId]
) -> tuple[frozenset[NodeId], frozenset[NodeId]]:
    """Split the fault-free nodes at the midpoint of ``[µ[s], U[s]]``.

    This is exactly the partition used in the proof of Theorem 3: ``A`` holds
    the nodes in the lower half-open interval and ``B`` the rest; both are
    non-empty whenever the spread is positive.
    """
    midpoint = (record.fault_free_max + record.fault_free_min) / 2.0
    lower = frozenset(
        node
        for node in fault_free
        if record.values[node] < midpoint
    )
    upper = fault_free - lower
    return lower, upper


def verify_theorem3_windows(
    history: Sequence[RoundRecord],
    graph: Digraph,
    f: int,
    alpha: float,
    faulty: frozenset[NodeId] = frozenset(),
    slack: float = 1e-9,
) -> list[WindowCheck]:
    """Replay Theorem 3's windowed argument along a measured trace.

    Starting from round ``s = 0`` and repeating from ``s + l(s)``: partition
    the fault-free nodes at the midpoint of their value range, determine which
    side propagates to the other (Lemma 2 guarantees one does when the graph
    satisfies Theorem 1), record the Lemma-5 bound for that window and the
    contraction actually measured over it.

    The returned checks all have ``satisfied=True`` when the implementation is
    faithful; the regression tests assert exactly that.
    """
    if not history:
        raise InvalidParameterError("history must contain at least the initial round")
    fault_free = graph.nodes - faulty
    checks: list[WindowCheck] = []
    threshold = f + 1
    start = 0
    last_round = history[-1].round_index
    while start < last_round:
        record = history[start]
        spread_start = record.spread
        if spread_start <= 0:
            break
        lower, upper = _midpoint_partition(record, fault_free)
        if not lower or not upper:
            break
        forward = propagates(graph, lower, upper, threshold)
        backward = propagates(graph, upper, lower, threshold)
        if forward.propagates:
            # Lower half (interval length < half the spread) propagates to the
            # upper half, matching the proof's first case.
            window = forward.steps
        elif backward.propagates:
            window = backward.steps
        else:
            raise NotApplicableError(
                "neither half propagates to the other: the graph does not "
                "satisfy the Theorem-1 condition, so Lemma 5 does not apply"
            )
        end = start + window
        if end > last_round:
            break
        spread_end = history[end].spread
        bound = lemma5_contraction_factor(alpha, window)
        measured = spread_end / spread_start
        checks.append(
            WindowCheck(
                start_round=start,
                window_length=window,
                bound_factor=bound,
                measured_factor=measured,
                satisfied=measured <= bound + slack,
            )
        )
        start = end
    return checks


# ---------------------------------------------------------------------------
# Empirical rate estimation
# ---------------------------------------------------------------------------
def empirical_decay_rate(spreads: Sequence[float]) -> float:
    """Return the fitted per-round geometric decay rate of the spread series.

    Fits ``spread[t] ≈ spread[0] · r^t`` by least squares on the logarithms of
    the positive entries and returns ``r``.  Requires at least two positive
    spreads; returns 0.0 when the series collapses to zero immediately
    (instant agreement).
    """
    values = np.asarray(list(spreads), dtype=float)
    if values.size < 2:
        raise InvalidParameterError("need at least two rounds to fit a rate")
    positive_mask = values > 0
    if positive_mask.sum() < 2:
        return 0.0
    rounds = np.arange(values.size, dtype=float)[positive_mask]
    logs = np.log(values[positive_mask])
    slope, _ = np.polyfit(rounds, logs, 1)
    return float(np.exp(slope))


def rounds_until_tolerance(spreads: Sequence[float], tolerance: float) -> int | None:
    """Return the first round index at which the spread is ≤ ``tolerance``,
    or ``None`` if it never happens within the series."""
    if tolerance < 0:
        raise InvalidParameterError(f"tolerance must be >= 0, got {tolerance}")
    for index, value in enumerate(spreads):
        if value <= tolerance:
            return index
    return None
