"""Matrix / Markov-chain view of the fault-free dynamics.

Section 2.3 of the paper remarks that, because the state at time ``t`` depends
only on the state at ``t − 1``, the evolution can be modelled by a Markov
chain.  For the non-fault-tolerant linear-average baseline the chain is
time-invariant and its transition matrix is fixed by the graph, so classical
spectral theory predicts the convergence rate; for Algorithm 1 the effective
matrix varies per round (the trimmed set ``N*_i[t]`` depends on the received
values), but each round's update is still a row-stochastic matrix with
diagonal at least ``α``.  This module provides:

* :func:`linear_average_matrix` — the fixed matrix of the baseline,
* :func:`spectral_gap` / :func:`second_largest_eigenvalue_modulus` — standard
  convergence-rate predictors for the baseline,
* :func:`effective_update_matrix` — the per-round row-stochastic matrix
  realised by Algorithm 1 on a given received-value profile (useful to verify
  the "diagonal ≥ α, rows sum to 1" structure that the convergence proof
  relies on).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.exceptions import InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.types import NodeId, ReceivedValue


def node_ordering(graph: Digraph) -> list[NodeId]:
    """Return the deterministic node ordering used for matrix rows/columns."""
    return sorted(graph.nodes, key=repr)


def linear_average_matrix(graph: Digraph) -> np.ndarray:
    """Return the row-stochastic matrix of the equal-weight averaging baseline.

    Row ``i`` places weight ``1 / (|N⁻_i| + 1)`` on node ``i`` itself and on
    each of its in-neighbours.
    """
    nodes = node_ordering(graph)
    index = {node: position for position, node in enumerate(nodes)}
    n = len(nodes)
    matrix = np.zeros((n, n), dtype=float)
    for node in nodes:
        weight = 1.0 / (graph.in_degree(node) + 1)
        row = index[node]
        matrix[row, row] = weight
        for neighbor in graph.in_neighbors(node):
            matrix[row, index[neighbor]] = weight
    return matrix


def is_row_stochastic(matrix: np.ndarray, tolerance: float = 1e-9) -> bool:
    """Return whether every row of ``matrix`` is non-negative and sums to 1."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise InvalidParameterError("matrix must be square")
    if (matrix < -tolerance).any():
        return False
    return bool(np.allclose(matrix.sum(axis=1), 1.0, atol=tolerance))


def second_largest_eigenvalue_modulus(matrix: np.ndarray) -> float:
    """Return ``|λ₂|``, the second largest eigenvalue modulus of ``matrix``.

    For a primitive row-stochastic matrix this governs the geometric rate at
    which the baseline averaging iteration contracts disagreement.
    """
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise InvalidParameterError("matrix must be square")
    if matrix.shape[0] == 1:
        return 0.0
    eigenvalues = np.linalg.eigvals(matrix)
    moduli = np.sort(np.abs(eigenvalues))[::-1]
    return float(moduli[1])


def spectral_gap(matrix: np.ndarray) -> float:
    """Return ``1 − |λ₂|`` for a row-stochastic matrix."""
    return 1.0 - second_largest_eigenvalue_modulus(matrix)


def effective_update_matrix(
    graph: Digraph,
    rule: TrimmedMeanRule,
    received_profile: dict[NodeId, Sequence[ReceivedValue]],
) -> np.ndarray:
    """Return the row-stochastic matrix realised by Algorithm 1 in one round.

    ``received_profile`` maps each node to the received vector it saw that
    round.  The row for node ``i`` places weight ``a_i`` on ``i`` itself and on
    each sender surviving the trimming; senders outside the graph's node set
    (impossible in well-formed profiles) raise an error.  Faulty senders that
    survive the trimming appear in the row like any other sender — the
    convergence proof handles them by sandwiching, not by excluding them from
    the matrix.
    """
    nodes = node_ordering(graph)
    index = {node: position for position, node in enumerate(nodes)}
    n = len(nodes)
    matrix = np.zeros((n, n), dtype=float)
    for node in nodes:
        row = index[node]
        if node not in received_profile:
            matrix[row, row] = 1.0
            continue
        received = list(received_profile[node])
        survivors = rule.surviving_values(node, received)
        weight = rule.weight_floor(len(received))
        matrix[row, row] = weight
        for item in survivors:
            if item.sender not in index:
                raise InvalidParameterError(
                    f"sender {item.sender!r} is not a node of the graph"
                )
            matrix[row, index[item.sender]] += weight
    return matrix


def predicted_rounds_linear(
    graph: Digraph, initial_spread: float, tolerance: float
) -> int:
    """Predict (via the spectral gap) how many rounds the linear-average
    baseline needs to shrink ``initial_spread`` to ``tolerance`` on a strongly
    connected graph.  A coarse estimate used only for reporting alongside the
    measured round counts in the ablation benchmark."""
    if initial_spread <= 0 or tolerance <= 0:
        raise InvalidParameterError("spreads must be positive")
    if tolerance >= initial_spread:
        return 0
    modulus = second_largest_eigenvalue_modulus(linear_average_matrix(graph))
    if modulus >= 1.0 or modulus <= 0.0:
        return 0
    return int(math.ceil(math.log(tolerance / initial_spread) / math.log(modulus)))
