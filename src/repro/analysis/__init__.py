"""Analysis tools: the paper's convergence-rate bounds (α, Lemma 5,
Theorem 3's windows), empirical rate estimation from traces, and the
matrix / spectral view of the fault-free dynamics."""

from repro.analysis.convergence import (
    WindowCheck,
    alpha_for_rule,
    empirical_decay_rate,
    lemma5_contraction_factor,
    rounds_to_reach,
    rounds_until_tolerance,
    verify_theorem3_windows,
    worst_case_window_length,
)
from repro.analysis.markov import (
    effective_update_matrix,
    is_row_stochastic,
    linear_average_matrix,
    node_ordering,
    predicted_rounds_linear,
    second_largest_eigenvalue_modulus,
    spectral_gap,
)

__all__ = [
    "WindowCheck",
    "alpha_for_rule",
    "empirical_decay_rate",
    "lemma5_contraction_factor",
    "rounds_to_reach",
    "rounds_until_tolerance",
    "verify_theorem3_windows",
    "worst_case_window_length",
    "effective_update_matrix",
    "is_row_stochastic",
    "linear_average_matrix",
    "node_ordering",
    "predicted_rounds_linear",
    "second_largest_eigenvalue_modulus",
    "spectral_gap",
]
