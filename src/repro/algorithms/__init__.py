"""Iterative consensus update rules: the paper's Algorithm 1 (trimmed mean),
the W-MSR rule from the companion literature, and non-fault-tolerant
baselines."""

from repro.algorithms.base import UpdateRule, sort_received
from repro.algorithms.linear import LinearAverageRule, MedianRule
from repro.algorithms.trimmed_mean import TrimmedMeanRule, TrimmedMidpointRule
from repro.algorithms.wmsr import WMSRRule

__all__ = [
    "UpdateRule",
    "sort_received",
    "LinearAverageRule",
    "MedianRule",
    "TrimmedMeanRule",
    "TrimmedMidpointRule",
    "WMSRRule",
]
