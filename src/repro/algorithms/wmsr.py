"""The W-MSR update rule (Weighted Mean-Subsequence-Reduced).

W-MSR is the rule studied by LeBlanc, Zhang, Sundaram and Koutsoukos in the
companion line of work the paper cites ([11], [17], [18]).  It differs from
the paper's Algorithm 1 in *how* values are discarded:

* Algorithm 1 removes the ``f`` smallest and ``f`` largest received values
  unconditionally;
* W-MSR removes at most ``f`` received values that are **strictly larger**
  than the node's own value (the largest ones) and at most ``f`` received
  values that are **strictly smaller** than the node's own value (the
  smallest ones) — if fewer than ``f`` received values lie on a given side,
  only those are removed.

Both rules are safe under ``f`` Byzantine neighbours; the library implements
W-MSR so the algorithm-ablation benchmark (E12) and the robustness comparison
(E11) can contrast the two on the paper's graph families.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.base import UpdateRule, sort_received
from repro.types import NodeId, ReceivedValue


class WMSRRule(UpdateRule):
    """The W-MSR rule with equal weights over the surviving values.

    After discarding (at most ``f`` per side, relative to the node's own
    value), the new state is the equal-weight average of the survivors and
    the node's own value.
    """

    name = "W-MSR"

    def surviving_values(
        self, node: NodeId, own_value: float, received: Sequence[ReceivedValue]
    ) -> list[ReceivedValue]:
        """Return the received values that survive W-MSR's relative trimming."""
        ordered = sort_received(received)
        if self.f == 0:
            return ordered
        smaller = [item for item in ordered if item.value < own_value]
        larger = [item for item in ordered if item.value > own_value]
        equal = [item for item in ordered if item.value == own_value]
        drop_small = min(self.f, len(smaller))
        drop_large = min(self.f, len(larger))
        kept_small = smaller[drop_small:]
        kept_large = larger[: len(larger) - drop_large] if drop_large else larger
        return kept_small + equal + kept_large

    def compute(
        self,
        node: NodeId,
        own_value: float,
        received: Sequence[ReceivedValue],
    ) -> float:
        survivors = self.surviving_values(node, own_value, received)
        values = [own_value] + [item.value for item in survivors]
        return sum(values) / len(values)
