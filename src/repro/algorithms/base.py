"""Update-rule abstraction shared by all iterative consensus algorithms.

The paper's family of iterative algorithms (Section 2.3) is defined by a
transition function ``Z_i``: in iteration ``t`` node ``i`` broadcasts its
state, receives the vector ``r_i[t]`` of values on its incoming edges and sets

    ``v_i[t] = Z_i(r_i[t], v_i[t − 1])``.

An :class:`UpdateRule` is exactly such a ``Z_i``: a stateless object mapping
(own previous value, received values) to the new value.  Keeping rules
stateless lets the same rule instance drive every node under both the
synchronous and the asynchronous engine, and lets the analysis module reason
about rule parameters (the weights ``a_i`` and their minimum ``α``)
independently of any particular execution.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.exceptions import AlgorithmPreconditionError, InvalidParameterError
from repro.graphs.digraph import Digraph
from repro.types import NodeId, ReceivedValue


class UpdateRule(ABC):
    """Base class for the transition functions ``Z_i`` of iterative algorithms.

    Subclasses implement :meth:`compute` and may override
    :meth:`minimum_in_degree` (the structural precondition checked before a
    simulation starts) and :meth:`weight_floor` (the per-node weight lower
    bound used by the convergence analysis; ``None`` when the rule has no
    meaningful ``α``).
    """

    #: Human-readable rule name used in reports and benchmark tables.
    name: str = "update-rule"

    def __init__(self, f: int) -> None:
        if f < 0:
            raise InvalidParameterError(f"fault budget f must be >= 0, got {f}")
        self._f = f

    @property
    def f(self) -> int:
        """The fault budget the rule is configured for."""
        return self._f

    # ------------------------------------------------------------------
    # Core interface
    # ------------------------------------------------------------------
    @abstractmethod
    def compute(
        self,
        node: NodeId,
        own_value: float,
        received: Sequence[ReceivedValue],
    ) -> float:
        """Return the node's new state given its own value and the received vector.

        ``received`` contains one entry per incoming edge (the paper's
        ``r_i[t]``); senders are included because edges are authenticated, but
        fault-tolerant rules must not *trust* sender identities beyond that.
        """

    def minimum_in_degree(self) -> int:
        """Return the smallest in-degree for which the rule is well defined.

        The synchronous engine validates this for every fault-free node before
        running.  The default is 0 (no structural requirement).
        """
        return 0

    def weight_floor(self, in_degree: int) -> float | None:
        """Return the smallest weight ``a_i`` the rule assigns at a node with
        the given in-degree, or ``None`` when the rule is not a weighted
        average with positive self-weight (in which case the paper's ``α``
        machinery does not apply)."""
        return None

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def validate_graph(self, graph: Digraph, nodes: Sequence[NodeId] | None = None) -> None:
        """Check the rule's structural precondition on ``graph``.

        ``nodes`` restricts the check (e.g. to fault-free nodes only); by
        default every node is checked.  Raises
        :class:`~repro.exceptions.AlgorithmPreconditionError` on violation.
        """
        required = self.minimum_in_degree()
        to_check = graph.nodes if nodes is None else nodes
        for node in to_check:
            if graph.in_degree(node) < required:
                raise AlgorithmPreconditionError(
                    f"rule {self.name!r} with f = {self._f} requires in-degree "
                    f">= {required}, but node {node!r} has in-degree "
                    f"{graph.in_degree(node)}"
                )

    def alpha(self, graph: Digraph, nodes: Sequence[NodeId] | None = None) -> float | None:
        """Return ``α = min_i a_i`` over the given nodes (paper eq. 3).

        Returns ``None`` for rules without a weight floor.  ``nodes`` defaults
        to every node of the graph; convergence analysis typically passes the
        fault-free nodes.
        """
        to_check = graph.nodes if nodes is None else nodes
        floors: list[float] = []
        for node in to_check:
            floor = self.weight_floor(graph.in_degree(node))
            if floor is None:
                return None
            floors.append(floor)
        if not floors:
            return None
        return min(floors)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(f={self._f})"


def sort_received(received: Sequence[ReceivedValue]) -> list[ReceivedValue]:
    """Return the received values sorted by value (ties broken by sender repr).

    The paper's Algorithm 1 breaks ties arbitrarily; sorting on the sender's
    ``repr`` as a secondary key makes every rule deterministic, which the
    tests and benchmarks rely on.
    """
    return sorted(received, key=lambda item: (item.value, repr(item.sender)))
