"""Algorithm 1 of the paper: the equal-weight trimmed-mean update.

At every iteration each node ``i``:

1. transmits its current state on all outgoing edges,
2. receives one value per incoming edge (the vector ``r_i[t]``),
3. sorts the received values, eliminates the ``f`` smallest and the ``f``
   largest (ties broken deterministically), and
4. sets its new state to the equal-weight average of the surviving received
   values together with its own previous state:

   ``v_i[t] = Σ_{j ∈ {i} ∪ N*_i[t]} a_i · w_j`` with
   ``a_i = 1 / (|N⁻_i| + 1 − 2f)``.

The weight floor ``a_i`` (and its graph-wide minimum ``α``, eq. 3) drives the
convergence-rate bound of Lemma 5, so the rule exposes it via
:meth:`TrimmedMeanRule.weight_floor`.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.base import UpdateRule, sort_received
from repro.exceptions import AlgorithmPreconditionError
from repro.types import NodeId, ReceivedValue


class TrimmedMeanRule(UpdateRule):
    """The paper's Algorithm 1 (equal-weight trimmed mean).

    Parameters
    ----------
    f:
        Fault budget: the number of extreme values removed from each end of
        the sorted received vector.

    Notes
    -----
    The rule is well defined only when ``|N⁻_i| ≥ 2f`` (otherwise trimming
    would remove more values than were received); Corollary 3 shows
    ``|N⁻_i| ≥ 2f + 1`` is necessary for correctness, and the feasibility
    checkers enforce the stronger bound — the rule itself only requires
    definedness.
    """

    name = "trimmed-mean (Algorithm 1)"

    def minimum_in_degree(self) -> int:
        return 2 * self.f

    def weight_floor(self, in_degree: int) -> float:
        """Return ``a_i = 1 / (|N⁻_i| + 1 − 2f)`` for a node of this in-degree."""
        denominator = in_degree + 1 - 2 * self.f
        if denominator < 1:
            raise AlgorithmPreconditionError(
                f"{self.name!r} with f = {self.f} is undefined at in-degree "
                f"{in_degree}: fewer than 2f values would remain after trimming"
            )
        return 1.0 / denominator

    def surviving_values(
        self, node: NodeId, received: Sequence[ReceivedValue]
    ) -> list[ReceivedValue]:
        """Return ``N*_i[t]``'s values: the received vector with the ``f``
        smallest and ``f`` largest entries removed (step 3 of Algorithm 1)."""
        if len(received) < 2 * self.f:
            raise AlgorithmPreconditionError(
                f"node {node!r} received {len(received)} values but "
                f"2f = {2 * self.f} must be trimmed"
            )
        ordered = sort_received(received)
        if self.f == 0:
            return ordered
        return ordered[self.f : len(ordered) - self.f]

    def compute(
        self,
        node: NodeId,
        own_value: float,
        received: Sequence[ReceivedValue],
    ) -> float:
        survivors = self.surviving_values(node, received)
        values = [own_value] + [item.value for item in survivors]
        # Equal weights a_i = 1 / (|N⁻_i| + 1 − 2f); len(values) equals that
        # denominator exactly, so the plain mean implements eq. (2).
        return sum(values) / len(values)


class TrimmedMidpointRule(UpdateRule):
    """A classic Dolev-style variant: trim ``f`` from each end, then move to
    the midpoint of the surviving values' range (including the node's own
    value).

    This rule satisfies the output constraint and validity but is *not* the
    paper's Algorithm 1 — it has no positive weight floor on every surviving
    neighbour, so the Lemma-5 analysis does not apply to it directly.  It is
    included for the algorithm-ablation experiment (E12).
    """

    name = "trimmed-midpoint"

    def minimum_in_degree(self) -> int:
        return 2 * self.f

    def compute(
        self,
        node: NodeId,
        own_value: float,
        received: Sequence[ReceivedValue],
    ) -> float:
        if len(received) < 2 * self.f:
            raise AlgorithmPreconditionError(
                f"node {node!r} received {len(received)} values but "
                f"2f = {2 * self.f} must be trimmed"
            )
        ordered = sort_received(received)
        survivors = ordered if self.f == 0 else ordered[self.f : len(ordered) - self.f]
        values = [own_value] + [item.value for item in survivors]
        return (min(values) + max(values)) / 2.0
