"""Non-fault-tolerant baselines: plain linear averaging and median updates.

These rules correspond to the extensively studied ``f = 0`` iterative
consensus algorithms the paper's introduction refers to (Bertsekas &
Tsitsiklis [4]).  They are used as baselines in the algorithm-ablation
experiment (E12): under Byzantine behaviour the plain average is dragged
outside the fault-free input hull (violating validity), whereas the median is
more robust but still lacks the paper's guarantees on general digraphs.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.base import UpdateRule, sort_received
from repro.types import NodeId, ReceivedValue


class LinearAverageRule(UpdateRule):
    """Equal-weight average of the node's own value and *all* received values.

    With ``f = 0`` this is the classic distributed-averaging iteration; it has
    no fault tolerance whatsoever — a single Byzantine in-neighbour can
    violate validity and prevent convergence.
    """

    name = "linear-average"

    def weight_floor(self, in_degree: int) -> float:
        return 1.0 / (in_degree + 1)

    def compute(
        self,
        node: NodeId,
        own_value: float,
        received: Sequence[ReceivedValue],
    ) -> float:
        values = [own_value] + [item.value for item in received]
        return sum(values) / len(values)


class MedianRule(UpdateRule):
    """Median of the node's own value and all received values.

    The median tolerates outliers better than the mean but, unlike
    Algorithm 1, it does not use the fault budget ``f`` and provides no
    general convergence guarantee on directed graphs; it serves as an
    intermediate baseline in the ablation.
    """

    name = "median"

    def compute(
        self,
        node: NodeId,
        own_value: float,
        received: Sequence[ReceivedValue],
    ) -> float:
        ordered = [item.value for item in sort_received(received)]
        values = sorted(ordered + [own_value])
        count = len(values)
        middle = count // 2
        if count % 2 == 1:
            return values[middle]
        return (values[middle - 1] + values[middle]) / 2.0
