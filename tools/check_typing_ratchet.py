"""Typing-ratchet gate for ``mypy.ini`` and the strictly-typed packages.

mypy itself is optional locally (CI installs it), so this gate enforces the
parts of the typed-API rollout that must never regress even where mypy is
absent, using only :mod:`configparser` and :mod:`ast`:

1. ``mypy.ini`` contains no ``ignore_errors`` escape hatch anywhere — the
   per-package exclusions for ``repro.experiments.*`` and ``repro.cli`` were
   lifted by the row-schema layer and must not come back.
2. Every baseline strict section (``disallow_untyped_defs = True``) is still
   present, and the total count of strict sections never decreases below the
   recorded baseline.  Adding a section means bumping
   :data:`STRICT_SECTION_BASELINE` in the same commit; removing one fails.
3. Every function in the strictly-typed packages is fully annotated
   (parameters except ``self``/``cls``, ``*args``/``**kwargs``, and the
   return type) — the static mirror of ``disallow_untyped_defs`` plus
   ``disallow_incomplete_defs``, so an unannotated def fails the gate on
   machines without mypy instead of only in CI.

Usage::

    python tools/check_typing_ratchet.py [--config mypy.ini] [--src src]
"""

from __future__ import annotations

import argparse
import ast
import configparser
import sys
from pathlib import Path

#: Number of ``disallow_untyped_defs = True`` sections the ratchet has
#: reached.  Only ever increase this (in the commit that adds a section).
STRICT_SECTION_BASELINE = 3

#: Strict sections that must always be present (the rollout floor).
REQUIRED_STRICT_SECTIONS = (
    "mypy-repro.sweeps.*",
    "mypy-repro.conditions.*",
    "mypy-repro.simulation.*",
)


def strict_sections(config: configparser.ConfigParser) -> list[str]:
    """Section names carrying ``disallow_untyped_defs = True``."""
    return [
        section
        for section in config.sections()
        if config.has_option(section, "disallow_untyped_defs")
        and config.getboolean(section, "disallow_untyped_defs")
    ]


def check_config(config_path: Path) -> tuple[list[str], list[str]]:
    """Validate ``mypy.ini``; return (errors, strict section names)."""
    errors: list[str] = []
    config = configparser.ConfigParser()
    config.read(config_path)
    for section in config.sections():
        if config.has_option(section, "ignore_errors"):
            errors.append(
                f"{config_path}: [{section}] sets ignore_errors; the "
                "typed-API rollout removed every exclusion and the ratchet "
                "does not allow new ones"
            )
    strict = strict_sections(config)
    for required in REQUIRED_STRICT_SECTIONS:
        if required not in strict:
            errors.append(
                f"{config_path}: [{required}] no longer sets "
                "disallow_untyped_defs = True; strict sections may be "
                "added, never removed"
            )
    if len(strict) < STRICT_SECTION_BASELINE:
        errors.append(
            f"{config_path}: {len(strict)} strict section(s), baseline is "
            f"{STRICT_SECTION_BASELINE}; the strict-module ratchet only "
            "moves forward (bump STRICT_SECTION_BASELINE when adding one)"
        )
    return errors, strict


def section_roots(strict: list[str], src: Path) -> list[Path]:
    """Map strict section names to the source paths they govern.

    ``mypy-repro.sweeps.*`` → ``src/repro/sweeps``;  a non-wildcard section
    like ``mypy-repro.cli`` maps to the module file.  Sections whose paths do
    not exist are reported by the caller via the required-section check, so
    they are simply skipped here.
    """
    roots: list[Path] = []
    for section in strict:
        dotted = section.removeprefix("mypy-")
        package = dotted.removesuffix(".*")
        base = src / Path(*package.split("."))
        if dotted.endswith(".*") or base.is_dir():
            if base.is_dir():
                roots.append(base)
        elif base.with_suffix(".py").is_file():
            roots.append(base.with_suffix(".py"))
    return roots


def unannotated_defs(path: Path) -> list[str]:
    """``name:line (what)`` entries for incompletely annotated functions."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    problems: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        positional = args.posonlyargs + args.args
        in_class = isinstance(parents.get(node), ast.ClassDef)
        skip = (
            1
            if in_class and positional and positional[0].arg in {"self", "cls"}
            else 0
        )
        missing = [
            arg.arg
            for arg in positional[skip:] + args.kwonlyargs
            if arg.annotation is None
        ]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if missing:
            problems.append(
                f"{path}:{node.lineno}: {node.name} has unannotated "
                "parameter(s): " + ", ".join(missing)
            )
        if node.returns is None:
            problems.append(
                f"{path}:{node.lineno}: {node.name} has no return annotation"
            )
    return problems


def check_annotations(roots: list[Path]) -> tuple[list[str], int]:
    """Scan the strict roots; return (errors, files scanned)."""
    errors: list[str] = []
    scanned = 0
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            scanned += 1
            errors.extend(unannotated_defs(path))
    return errors, scanned


def main(argv: list[str] | None = None) -> int:
    """Run the ratchet gate; exit 0 when the rollout has not regressed."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", type=Path, default=Path("mypy.ini"))
    parser.add_argument("--src", type=Path, default=Path("src"))
    options = parser.parse_args(argv)

    if not options.config.is_file():
        print(f"typing ratchet: config {options.config} not found")
        return 1
    errors, strict = check_config(options.config)
    roots = section_roots(strict, options.src)
    annotation_errors, scanned = check_annotations(roots)
    errors.extend(annotation_errors)
    if errors:
        for error in errors:
            print(error)
        print(f"typing ratchet: {len(errors)} problem(s)")
        return 1
    print(
        f"typing ratchet OK: {len(strict)} strict section(s) "
        f"(baseline {STRICT_SECTION_BASELINE}), {scanned} file(s) fully "
        "annotated, no ignore_errors"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
