"""RNG-discipline and entropy/clock-hygiene rules (``RNG*``, ``CLK*``).

The RNG-stream contract (PR 2, ``docs/architecture.md``): every stream in
the library is derived from a caller-supplied seed, per-row streams come
from ``SeedSequence.spawn``, and draws happen in canonical repr-sorted
order.  These rules catch the statically visible ways of breaking it —
OS-entropy seeding, the legacy global-state ``np.random`` API, stdlib
``random``, and hard-coded seeds that silently correlate what should be
independent streams.  Wall-clock reads are confined to the provenance
module for the same reason: a timestamp inside a simulation path is an
input the seed does not control.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.engine import (
    Finding,
    ParsedModule,
    Rule,
    dotted_name,
    register_rule,
)

#: Legacy global-state ``np.random`` functions (the pre-Generator API).
LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "beta",
        "binomial",
        "poisson",
        "exponential",
        "gamma",
        "get_state",
        "set_state",
    }
)

#: Dotted-suffix matches for wall-clock / OS-entropy calls.
CLOCK_ENTROPY_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
)


def _is_default_rng(func: ast.expr) -> bool:
    """Whether a call target is ``default_rng`` (bare or via ``np.random``)."""
    name = dotted_name(func)
    return name is not None and (
        name == "default_rng" or name.endswith(".default_rng")
    )


def _is_seed_sequence(func: ast.expr) -> bool:
    """Whether a call target is ``SeedSequence`` (bare or dotted)."""
    name = dotted_name(func)
    return name is not None and (
        name == "SeedSequence" or name.endswith(".SeedSequence")
    )


@register_rule
class ArglessDefaultRng(Rule):
    """``np.random.default_rng()`` with no seed draws from OS entropy."""

    rule_id = "RNG001"
    summary = (
        "argless default_rng() seeds from OS entropy; thread a seed or "
        "Generator through the caller instead"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if _is_default_rng(node.func) and not node.args and not node.keywords:
            yield self.finding(
                module,
                node,
                "argless default_rng() is non-reproducible; accept a "
                "seed/Generator parameter and pass it through",
            )


@register_rule
class LegacyNpRandom(Rule):
    """The module-level ``np.random.*`` API mutates hidden global state."""

    rule_id = "RNG002"
    summary = (
        "legacy module-level np.random.* call (hidden global state); use a "
        "Generator from default_rng(seed)"
    )
    node_types = (ast.Attribute,)

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        assert isinstance(node, ast.Attribute)
        if node.attr not in LEGACY_NP_RANDOM:
            return
        base = dotted_name(node.value)
        if base in {"np.random", "numpy.random"}:
            yield self.finding(
                module,
                node,
                f"np.random.{node.attr} uses the legacy global-state API; "
                "use a Generator from default_rng(seed)",
            )


@register_rule
class StdlibRandom(Rule):
    """stdlib ``random`` is globally seeded and hash-order adjacent."""

    rule_id = "RNG003"
    summary = (
        "stdlib random module imported; all library randomness must flow "
        "through numpy Generators"
    )
    node_types = (ast.Import, ast.ImportFrom)

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield self.finding(
                        module,
                        node,
                        "import of stdlib random; use numpy default_rng "
                        "streams instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                yield self.finding(
                    module,
                    node,
                    "import from stdlib random; use numpy default_rng "
                    "streams instead",
                )


@register_rule
class HardCodedSeed(Rule):
    """Literal seeds in library code correlate streams that must be free."""

    rule_id = "RNG004"
    summary = (
        "hard-coded integer seed in default_rng/SeedSequence; seeds must be "
        "plumbed from the caller (per-row streams via SeedSequence.spawn)"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not (_is_default_rng(node.func) or _is_seed_sequence(node.func)):
            return
        first = node.args[0] if node.args else None
        if first is None:
            for keyword in node.keywords:
                if keyword.arg in {"seed", "entropy"}:
                    first = keyword.value
                    break
        if isinstance(first, ast.Constant) and isinstance(
            first.value, int
        ) and not isinstance(first.value, bool):
            yield self.finding(
                module,
                node,
                "hard-coded seed literal; accept the seed as a parameter so "
                "callers control the stream (spawn per-row streams from one "
                "SeedSequence)",
            )


@register_rule
class ClockEntropyHygiene(Rule):
    """Wall clocks and OS entropy belong to the provenance layer only."""

    rule_id = "CLK001"
    summary = (
        "wall-clock/entropy call outside repro/sweeps/provenance.py "
        "(time.time, datetime.now, os.urandom, uuid4, secrets)"
    )
    node_types = (ast.Call, ast.Import, ast.ImportFrom)

    def applies_to(self, module: ParsedModule) -> bool:
        return not module.is_clock_exempt

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                return
            if name.split(".", 1)[0] == "secrets" or any(
                name == suffix or name.endswith("." + suffix)
                for suffix in CLOCK_ENTROPY_SUFFIXES
            ):
                yield self.finding(
                    module,
                    node,
                    f"{name}() reads the wall clock or OS entropy; only "
                    "repro/sweeps/provenance.py may (monotonic "
                    "time.perf_counter is fine for durations)",
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "secrets":
                    yield self.finding(
                        module,
                        node,
                        "import of secrets outside the provenance module",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "secrets" and node.level == 0:
                yield self.finding(
                    module,
                    node,
                    "import from secrets outside the provenance module",
                )
