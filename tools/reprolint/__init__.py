"""reprolint — the determinism & contract static-analysis suite.

The repository's engine tiers are bit-exact and reproducible only because of
contracts that no type system expresses: per-row RNG streams spawned from one
``SeedSequence``, canonical repr-sorted iteration on every path that feeds a
draw or a float reduction, strictly sequential summation in the kernels, and
wall-clock/entropy calls confined to the provenance layer.  ``reprolint``
encodes those contracts as AST rules (see :mod:`reprolint.rules_rng`,
:mod:`reprolint.rules_order`, :mod:`reprolint.rules_exact`,
:mod:`reprolint.rules_api`) and runs them over ``src/repro``:

    PYTHONPATH=src:tools python -m reprolint src/repro

Suppressions use ``# reprolint: disable=RULE -- reason`` pragmas and every
suppression must carry a reason (the *zero unexplained suppressions* budget);
see :mod:`reprolint.pragmas`.  The suite is ``--fix``-free by design: each
contract violation needs a human decision (re-order, re-derive the stream,
or document why the site is exempt), and an auto-rewriter would hide exactly
the reasoning the pragma reason field exists to capture.

The narrative companion is ``docs/contracts.md``, which maps every rule ID
to the contract it enforces.
"""

from __future__ import annotations

from reprolint.engine import (
    Finding,
    LintReport,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
)

__version__ = "1.0.0"

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "__version__",
]
