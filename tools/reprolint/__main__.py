"""Command-line driver: ``PYTHONPATH=src:tools python -m reprolint``.

Exit codes: 0 clean, 1 findings (including any ``SUP001`` past the
``--budget-unexplained`` allowance, which defaults to zero), 2 usage error.
There is deliberately no ``--fix``: every violation is either a real
contract break (fix the code) or a documented exemption (write the pragma
reason) — see the package docstring.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from reprolint.engine import LintReport, all_rules, lint_paths
from reprolint.pragmas import UNEXPLAINED_SUPPRESSION


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (shared with the test suite)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Determinism & contract static analysis for the VaidyaTL12 "
            "reproduction (rules documented in docs/contracts.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--budget-unexplained",
        type=int,
        default=0,
        metavar="N",
        help="allowed number of unexplained suppressions (default: 0)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule ID with its summary and exit",
    )
    return parser


def _split_ids(raw: str | None) -> list[str] | None:
    """Parse a comma-separated rule-ID list option."""
    if raw is None:
        return None
    return [token.strip() for token in raw.split(",") if token.strip()]


def _print_text(report: LintReport, budget: int) -> None:
    """Human-readable report."""
    for finding in report.findings:
        print(finding.format())
    kept = len(report.findings)
    print(
        f"reprolint: {report.files_scanned} file(s) scanned, "
        f"{kept} finding(s), {len(report.suppressed)} suppressed, "
        f"{report.unexplained_suppressions} unexplained suppression(s) "
        f"(budget {budget})"
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in all_rules().items():
            print(f"{rule_id}  {rule_cls.summary}")
        return 0

    try:
        report = lint_paths(
            args.paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
        )
    except (ValueError, OSError) as error:
        print(f"reprolint: error: {error}", file=sys.stderr)
        return 2

    if args.budget_unexplained > 0:
        # Inside the budget, unexplained-suppression findings are waived
        # (oldest first, by position); the rest still fail the run.
        waived = 0
        kept = []
        for finding in report.findings:
            if (
                finding.rule == UNEXPLAINED_SUPPRESSION
                and waived < args.budget_unexplained
            ):
                waived += 1
                continue
            kept.append(finding)
        report = LintReport(
            findings=kept,
            suppressed=report.suppressed,
            files_scanned=report.files_scanned,
            unexplained_suppressions=report.unexplained_suppressions,
        )

    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        _print_text(report, args.budget_unexplained)
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
