"""Hash-order iteration rules (``ORD*``).

On canonical paths every iteration order can feed an RNG draw or a
sequential float reduction, so the contract is: *nothing iterates a set,
and dict views are iterated only where insertion order is itself canonical*
(each such site carries an explained pragma).  ``sorted(...)`` is the
sanctioned escape — anything inside a ``sorted`` call is by definition in
canonical order.  The repo's own history motivates the rule: PR 2 fixed
per-message draws that iterated sets in hash order, and the necessity
experiment drew per-node inputs over a set union until this linter flagged
it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.engine import (
    Finding,
    ParsedModule,
    Rule,
    iteration_sites,
    register_rule,
    unwrap_order_preserving,
)

#: Set methods whose result is a freshly hashed set.
SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: Dict-view methods (iteration order = insertion order, not canonical).
DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})

#: Binary set operators (``|``, ``&``, ``-``, ``^``) in iteration position.
SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

_ITERATION_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def _is_set_like(expr: ast.expr) -> bool:
    """Whether an expression syntactically produces a set."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if isinstance(func, ast.Attribute) and func.attr in SET_METHODS:
            return True
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, SET_BINOPS):
        return True
    return False


def _is_dict_view(expr: ast.expr) -> bool:
    """Whether an expression is a no-arg ``.keys()/.values()/.items()`` call."""
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in DICT_VIEW_METHODS
        and not expr.args
        and not expr.keywords
    )


@register_rule
class SetIteration(Rule):
    """Iterating a set visits elements in hash order."""

    rule_id = "ORD001"
    summary = (
        "iteration over a set-typed expression (hash order); wrap in "
        "sorted(..., key=repr) for canonical order"
    )
    node_types = _ITERATION_NODES

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        for site in iteration_sites(node):
            expr = unwrap_order_preserving(site)
            if _is_set_like(expr):
                yield self.finding(
                    module,
                    expr,
                    "iteration over a set-typed expression visits elements "
                    "in hash order; wrap in sorted(..., key=repr)",
                )


@register_rule
class DictViewIteration(Rule):
    """Dict views on canonical paths must prove their order is canonical."""

    rule_id = "ORD002"
    summary = (
        "iteration over a dict view in a canonical-path module; sort it, or "
        "pragma-document why insertion order is canonical here"
    )
    node_types = _ITERATION_NODES

    def applies_to(self, module: ParsedModule) -> bool:
        return module.is_canonical

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        for site in iteration_sites(node):
            expr = unwrap_order_preserving(site)
            if _is_dict_view(expr):
                assert isinstance(expr, ast.Call)
                assert isinstance(expr.func, ast.Attribute)
                yield self.finding(
                    module,
                    expr,
                    f".{expr.func.attr}() iterates in insertion order; on a "
                    "canonical path either sorted(...)-wrap it or document "
                    "with a pragma why insertion order is canonical",
                )
