"""Core of the reprolint framework: findings, rules, registry, and driver.

One :class:`ParsedModule` is built per file (AST, source lines, parent map,
and the path-derived *module classes* the rules scope themselves by).  The
engine performs a single ``ast.walk`` per module and dispatches each node to
every registered rule that declared interest in its type (the *visitor
registry*), then gives each rule a ``finish`` callback for module-level
checks.  Suppression pragmas are applied afterwards by
:mod:`reprolint.pragmas`, so rules never need to know about them.

Module classes
--------------
Rules scope themselves by where a file lives, mirroring the architecture:

* ``canonical`` — ``repro/simulation/``, ``repro/adversary/``,
  ``repro/conditions/``: every iteration order here can feed an RNG draw or
  a sequential float reduction, so hash-order iteration is forbidden.
* ``kernel`` — ``repro/simulation/`` and ``repro/algorithms/``: the numeric
  kernels whose bit-exactness contract bans ``reduceat``/``fsum`` and
  undocumented dtype narrowing.
* ``experiments`` — ``repro/experiments/``: registry completeness applies.
* ``clock_exempt`` — ``repro/sweeps/provenance.py``: the one module allowed
  to read wall clocks and machine entropy.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence, Type

#: Path fragments (POSIX form) that place a module on a canonical path.
CANONICAL_FRAGMENTS = (
    "repro/simulation/",
    "repro/adversary/",
    "repro/conditions/",
)

#: Path fragments of the bit-exact numeric kernels.
KERNEL_FRAGMENTS = (
    "repro/simulation/",
    "repro/algorithms/",
)

#: Path fragment of the experiments package (registry-completeness scope).
EXPERIMENTS_FRAGMENT = "repro/experiments/"

#: The single module allowed to touch wall clocks and OS entropy.
CLOCK_EXEMPT_SUFFIXES = ("repro/sweeps/provenance.py",)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """Render the finding in the classic ``path:line:col: ID message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """Return the JSON-serialisable form of the finding."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class ParsedModule:
    """A parsed source file plus everything the rules need to scope checks."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()
        if not self.parents:
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self.parents[child] = parent

    @property
    def posix_path(self) -> str:
        """The path with forward slashes, the form the class checks match on."""
        return self.path.replace("\\", "/")

    @property
    def is_canonical(self) -> bool:
        """Whether the module sits on a canonical (order-sensitive) path."""
        return any(frag in self.posix_path for frag in CANONICAL_FRAGMENTS)

    @property
    def is_kernel(self) -> bool:
        """Whether the module is a bit-exact numeric kernel."""
        return any(frag in self.posix_path for frag in KERNEL_FRAGMENTS)

    @property
    def is_experiments(self) -> bool:
        """Whether the module belongs to the experiments package."""
        return EXPERIMENTS_FRAGMENT in self.posix_path

    @property
    def is_clock_exempt(self) -> bool:
        """Whether the module may read wall clocks / entropy (provenance)."""
        return self.posix_path.endswith(CLOCK_EXEMPT_SUFFIXES)

    def parent(self, node: ast.AST) -> ast.AST | None:
        """Return the syntactic parent of ``node`` (``None`` for the module)."""
        return self.parents.get(node)


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id`, :attr:`summary` and :attr:`node_types`,
    implement :meth:`visit` for each matching node, and may override
    :meth:`finish` for whole-module checks.  ``visit``/``finish`` yield
    :class:`Finding` objects; the engine owns traversal, so a rule never
    walks the tree itself.
    """

    #: Unique rule identifier, e.g. ``"RNG001"``.
    rule_id: str = ""
    #: One-line description shown by ``--list-rules`` and the docs.
    summary: str = ""
    #: AST node classes the rule wants to see (empty: ``finish`` only).
    node_types: tuple[Type[ast.AST], ...] = ()

    def applies_to(self, module: ParsedModule) -> bool:
        """Whether the rule runs on this module at all (default: always)."""
        return True

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        """Yield findings for one node of a registered type."""
        return iter(())

    def finish(self, module: ParsedModule) -> Iterator[Finding]:
        """Yield module-level findings after the walk completes."""
        return iter(())

    def finding(
        self, module: ParsedModule, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            rule=self.rule_id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_RULE_REGISTRY: dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry (unique IDs)."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _RULE_REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> dict[str, Type[Rule]]:
    """Return every registered rule class keyed by rule ID, sorted."""
    _load_rule_modules()
    return dict(sorted(_RULE_REGISTRY.items()))


_RULES_LOADED = False


def _load_rule_modules() -> None:
    """Import the rule modules once so their ``@register_rule`` decorators run."""
    global _RULES_LOADED
    if _RULES_LOADED:
        return
    # Imported here (not at module top) to avoid a cycle: the rule modules
    # import Rule/register_rule from this module.
    import reprolint.rules_api  # noqa: F401
    import reprolint.rules_exact  # noqa: F401
    import reprolint.rules_order  # noqa: F401
    import reprolint.rules_rng  # noqa: F401

    _RULES_LOADED = True


@dataclass
class LintReport:
    """Outcome of one lint run: kept findings plus suppression accounting."""

    findings: list[Finding]
    suppressed: list[Finding]
    files_scanned: int
    unexplained_suppressions: int

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any finding survived suppression."""
        return 1 if self.findings else 0

    def as_dict(self) -> dict[str, object]:
        """Return the JSON document ``--format json`` prints."""
        return {
            "tool": "reprolint",
            "files_scanned": self.files_scanned,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "unexplained_suppressions": self.unexplained_suppressions,
        }


def _instantiate_rules(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> list[Rule]:
    """Build rule instances honouring ``--select`` / ``--ignore``."""
    registry = all_rules()
    unknown = [
        rule_id
        for rule_id in list(select or []) + list(ignore or [])
        if rule_id not in registry
    ]
    if unknown:
        known = ", ".join(registry)
        raise ValueError(f"unknown rule id(s) {unknown!r}; known: {known}")
    chosen = list(select) if select else list(registry)
    if ignore:
        chosen = [rule_id for rule_id in chosen if rule_id not in set(ignore)]
    return [registry[rule_id]() for rule_id in chosen]


def _run_rules(module: ParsedModule, rules: Iterable[Rule]) -> list[Finding]:
    """Single-walk visitor dispatch over one module."""
    active = [rule for rule in rules if rule.applies_to(module)]
    findings: list[Finding] = []
    dispatch: dict[Type[ast.AST], list[Rule]] = {}
    for rule in active:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    if dispatch:
        for node in ast.walk(module.tree):
            for rule in dispatch.get(type(node), ()):
                findings.extend(rule.visit(node, module))
    for rule in active:
        findings.extend(rule.finish(module))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(
    source: str,
    path: str = "src/repro/module.py",
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintReport:
    """Lint one in-memory source blob (the test-fixture entry point).

    ``path`` determines the module classes (canonical/kernel/experiments/
    clock-exempt), so fixtures can exercise the scoped rules by faking a
    location.
    """
    return _lint_modules([(path, source)], select=select, ignore=ignore)


def lint_paths(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintReport:
    """Lint files and directory trees (``.py`` files, recursively)."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise ValueError(f"not a Python file or directory: {path}")
    sources = [(str(path), path.read_text(encoding="utf-8")) for path in files]
    return _lint_modules(sources, select=select, ignore=ignore)


def _lint_modules(
    sources: Sequence[tuple[str, str]],
    select: Sequence[str] | None,
    ignore: Sequence[str] | None,
) -> LintReport:
    """Shared driver: parse, run rules, then apply pragma suppressions."""
    # Local import: pragmas imports Finding from this module.
    from reprolint.pragmas import apply_pragmas

    rules = _instantiate_rules(select, ignore)
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    unexplained = 0
    for path, source in sources:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            kept.append(
                Finding(
                    rule="PARSE",
                    path=path,
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    message=f"syntax error: {error.msg}",
                )
            )
            continue
        module = ParsedModule(path=path, source=source, tree=tree)
        raw = _run_rules(module, rules)
        file_kept, file_suppressed, file_unexplained = apply_pragmas(
            module, raw
        )
        kept.extend(file_kept)
        suppressed.extend(file_suppressed)
        unexplained += file_unexplained
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(
        findings=kept,
        suppressed=suppressed,
        files_scanned=len(sources),
        unexplained_suppressions=unexplained,
    )


def dotted_name(node: ast.AST) -> str | None:
    """Return the dotted form of a ``Name``/``Attribute`` chain, else ``None``.

    ``np.random.default_rng`` → ``"np.random.default_rng"``.  Chains that
    pass through calls or subscripts yield ``None``: they are dynamic and no
    rule matches on them.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


#: Callable signature of the per-node hooks, for documentation purposes.
NodeHook = Callable[[ast.AST, ParsedModule], Iterator[Finding]]


def iteration_sites(
    node: ast.AST,
) -> Iterator[ast.expr]:
    """Yield the iterable expressions of a ``for`` or comprehension node.

    The order rules only care about expressions in *iteration position* —
    membership tests and plain construction are order-insensitive.
    """
    if isinstance(node, (ast.For, ast.AsyncFor)):
        yield node.iter
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        for comp in node.generators:
            yield comp.iter


def unwrap_order_preserving(expr: ast.expr) -> ast.expr:
    """Strip order-preserving wrappers (``list``/``tuple``/``enumerate``/
    ``reversed``/``iter``) so ``for x in list(some_set)`` is still caught.

    ``sorted(...)`` is deliberately *not* stripped: it is the sanctioned way
    to establish canonical order, so anything inside it is fine.
    """
    while (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in {"list", "tuple", "enumerate", "reversed", "iter"}
        and expr.args
    ):
        expr = expr.args[0]
    return expr
