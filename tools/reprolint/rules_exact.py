"""Bit-exactness rules for the numeric kernels (``EXA*``).

The kernels (``repro/simulation/``, ``repro/algorithms/``) promise that the
scalar reference, the dense batch engine and the sparse CSR engine produce
``np.array_equal`` outputs.  That only holds under strictly sequential
float summation in one canonical order — which is why ``np.add.reduceat``
was evaluated and rejected (pairwise reduction blocks change the rounding
path, ``docs/architecture.md``) and why ``math.fsum`` (exact but
*different*) is equally banned.  Narrowed dtypes may enter only through
the documented ``dtype=`` plumbing (``repro/simulation/sparse.py``), never
as ad-hoc literals inside a kernel.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.engine import (
    Finding,
    ParsedModule,
    Rule,
    dotted_name,
    register_rule,
)

#: Narrow float dtype attribute names (``np.<name>``).
NARROW_DTYPE_ATTRS = frozenset({"float32", "float16", "half", "single"})

#: Narrow float dtype string literals (``dtype="float32"`` and friends).
NARROW_DTYPE_STRINGS = frozenset({"float32", "float16", "<f4", "<f2", "f4", "f2"})


@register_rule
class ReduceatUse(Rule):
    """``ufunc.reduceat`` reduces in pairwise blocks, not sequentially."""

    rule_id = "EXA001"
    summary = (
        "ufunc.reduceat in a kernel module; pairwise reduction order breaks "
        "bit-exactness vs sequential summation"
    )
    node_types = (ast.Attribute,)

    def applies_to(self, module: ParsedModule) -> bool:
        return module.is_kernel

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        assert isinstance(node, ast.Attribute)
        if node.attr == "reduceat":
            yield self.finding(
                module,
                node,
                "reduceat's pairwise block reduction changes the rounding "
                "path; kernels must sum sequentially in canonical order",
            )


@register_rule
class FsumUse(Rule):
    """``math.fsum`` is exact, which makes it *differently* rounded."""

    rule_id = "EXA002"
    summary = (
        "math.fsum in a kernel module; exact summation diverges from the "
        "sequential-summation contract the engines share"
    )
    node_types = (ast.Call, ast.ImportFrom)

    def applies_to(self, module: ParsedModule) -> bool:
        return module.is_kernel

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and (name == "fsum" or name.endswith(".fsum")):
                yield self.finding(
                    module,
                    node,
                    "fsum rounds differently from the sequential summation "
                    "every engine tier implements; use plain ordered sums",
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "math" and any(
                alias.name == "fsum" for alias in node.names
            ):
                yield self.finding(
                    module,
                    node,
                    "import of math.fsum in a kernel module",
                )


@register_rule
class NarrowDtypeLiteral(Rule):
    """float32/float16 enters kernels only via the documented plumbing."""

    rule_id = "EXA003"
    summary = (
        "narrowing dtype literal (float32/float16) in a kernel module; "
        "narrow dtypes flow only through the documented dtype= plumbing"
    )
    node_types = (ast.Attribute, ast.Constant)

    def applies_to(self, module: ParsedModule) -> bool:
        return module.is_kernel

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        if isinstance(node, ast.Attribute):
            if node.attr in NARROW_DTYPE_ATTRS:
                base = dotted_name(node.value)
                if base in {"np", "numpy"}:
                    yield self.finding(
                        module,
                        node,
                        f"np.{node.attr} literal in a kernel; route narrow "
                        "dtypes through the documented dtype= parameter "
                        "(see repro/simulation/sparse.py) or pragma the "
                        "plumbing site",
                    )
        elif isinstance(node, ast.Constant):
            if (
                isinstance(node.value, str)
                and node.value in NARROW_DTYPE_STRINGS
            ):
                yield self.finding(
                    module,
                    node,
                    f"dtype string {node.value!r} in a kernel; route narrow "
                    "dtypes through the documented dtype= parameter",
                )
