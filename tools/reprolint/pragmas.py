"""Suppression pragmas: ``# reprolint: disable=RULE[,RULE] -- reason``.

A pragma suppresses the listed rules on its own physical line; a line that
contains *only* the pragma comment suppresses the next line instead (for
statements too long to carry a trailing comment).  Suppressions are part of
the contract record, so each must explain itself: the text after ``--`` is
the reason, and a pragma without one is itself reported as ``SUP001``
(*unexplained suppression* — the budget for these is zero).  A pragma that
suppresses nothing is reported as ``SUP002`` (*unused suppression*) so stale
exemptions cannot linger after the code they excused is fixed.  Neither
``SUP`` finding can be pragma-suppressed — the only way to silence them is
to explain or delete the pragma.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from reprolint.engine import Finding, ParsedModule

#: Pragma grammar.  ``disable=ALL`` suppresses every rule on the line.
PRAGMA_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s+--\s*(?P<reason>.*\S))?\s*$"
)

#: Rule IDs synthesised by the pragma engine itself (never suppressible).
UNEXPLAINED_SUPPRESSION = "SUP001"
UNUSED_SUPPRESSION = "SUP002"


@dataclass
class Pragma:
    """One parsed pragma comment and its suppression accounting."""

    line: int
    target_line: int
    rules: frozenset[str]
    reason: str | None
    used: bool = field(default=False)

    @property
    def explained(self) -> bool:
        """Whether the pragma carries a non-empty reason."""
        return bool(self.reason)

    def matches(self, rule_id: str) -> bool:
        """Whether the pragma suppresses ``rule_id``."""
        return "ALL" in self.rules or rule_id in self.rules


def parse_pragmas(module: ParsedModule) -> list[Pragma]:
    """Extract every pragma from the module's source lines.

    Comment-only pragma lines target the next physical line; trailing
    pragmas target their own line.
    """
    pragmas: list[Pragma] = []
    for index, line in enumerate(module.lines, start=1):
        match = PRAGMA_PATTERN.search(line)
        if match is None:
            continue
        rules = frozenset(
            token.strip()
            for token in match.group("rules").split(",")
            if token.strip()
        )
        if not rules:
            continue
        comment_only = line.strip().startswith("#")
        pragmas.append(
            Pragma(
                line=index,
                target_line=index + 1 if comment_only else index,
                rules=rules,
                reason=match.group("reason"),
            )
        )
    return pragmas


def apply_pragmas(
    module: ParsedModule, findings: list[Finding]
) -> tuple[list[Finding], list[Finding], int]:
    """Split ``findings`` into kept and suppressed; append SUP findings.

    Returns ``(kept, suppressed, unexplained_count)`` where
    ``unexplained_count`` is the number of ``SUP001`` findings added (the
    zero-budget quantity the driver enforces).
    """
    pragmas = parse_pragmas(module)
    by_line: dict[int, list[Pragma]] = {}
    for pragma in pragmas:
        by_line.setdefault(pragma.target_line, []).append(pragma)

    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        match = next(
            (
                pragma
                for pragma in by_line.get(finding.line, [])
                if pragma.matches(finding.rule)
            ),
            None,
        )
        if match is None:
            kept.append(finding)
        else:
            match.used = True
            suppressed.append(finding)

    unexplained = 0
    for pragma in pragmas:
        if pragma.used and not pragma.explained:
            unexplained += 1
            kept.append(
                Finding(
                    rule=UNEXPLAINED_SUPPRESSION,
                    path=module.path,
                    line=pragma.line,
                    col=0,
                    message=(
                        "suppression without a reason; write "
                        "'# reprolint: disable="
                        + ",".join(sorted(pragma.rules))
                        + " -- <why this site is exempt>'"
                    ),
                )
            )
        elif not pragma.used:
            kept.append(
                Finding(
                    rule=UNUSED_SUPPRESSION,
                    path=module.path,
                    line=pragma.line,
                    col=0,
                    message=(
                        "pragma suppresses nothing (rules "
                        + ",".join(sorted(pragma.rules))
                        + " raise no finding here); delete it"
                    ),
                )
            )
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept, suppressed, unexplained
