"""API-contract rules: registry completeness, exceptions, typed API.

``REG*`` keeps the experiment registry honest: a driver module that grows a
sweep entry point (``run_*`` or the ``*_cell`` convention) but forgets
``@register_experiment`` silently drops out of ``repro list``/``repro run``
— and a registration without ``engine=``/``paper_section=`` metadata breaks
the paper-section mapping in ``docs/experiments.md``.  ``REG003`` guards the
row-schema layer: every registration must carry ``schema=`` built by
``schema_from_typeddict``, and the ``roles`` mapping must name exactly the
TypedDict's fields (checked statically for the class form, same-module base
classes, and the functional ``TypedDict("Row", {...})`` form).  ``EXC*``
bans the
two ways contract violations get swallowed instead of raised.  ``TYP001``
is the static half of the typed-API gate: every public function carries
full parameter and return annotations, so mypy (the dynamic half, run by
``make lint`` when installed) actually has something to check.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.engine import (
    Finding,
    ParsedModule,
    Rule,
    dotted_name,
    register_rule,
)

#: Keyword arguments every ``@register_experiment`` call must carry.
REQUIRED_REGISTRY_KWARGS = ("engine", "paper_section")

#: Function-name conventions that mark a sweep entry point.
ENTRY_POINT_PREFIX = "run_"
ENTRY_POINT_SUFFIX = "_cell"


def _is_register_experiment(func: ast.expr) -> bool:
    """Whether a call target is ``register_experiment`` (bare or dotted)."""
    name = dotted_name(func)
    return name is not None and (
        name == "register_experiment" or name.endswith(".register_experiment")
    )


@register_rule
class RegistryCompleteness(Rule):
    """Experiment modules with entry points must register them."""

    rule_id = "REG001"
    summary = (
        "experiments module defines a run_*/*_cell entry point but never "
        "calls @register_experiment"
    )

    def applies_to(self, module: ParsedModule) -> bool:
        return module.is_experiments

    def finish(self, module: ParsedModule) -> Iterator[Finding]:
        entry_points = [
            node
            for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and not node.name.startswith("_")
            and (
                node.name.startswith(ENTRY_POINT_PREFIX)
                or node.name.endswith(ENTRY_POINT_SUFFIX)
            )
        ]
        if not entry_points:
            return
        registered = any(
            _is_register_experiment(node.func)
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Call)
        )
        if not registered:
            first = entry_points[0]
            yield self.finding(
                module,
                first,
                f"module defines entry point {first.name!r} but never calls "
                "@register_experiment; unregistered experiments are "
                "invisible to `repro list`/`repro run`",
            )


@register_rule
class RegistryMetadata(Rule):
    """Registrations must carry engine and paper-section metadata."""

    rule_id = "REG002"
    summary = (
        "@register_experiment call missing engine= or paper_section= "
        "metadata"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not _is_register_experiment(node.func):
            return
        present = {keyword.arg for keyword in node.keywords}
        missing = [
            kwarg for kwarg in REQUIRED_REGISTRY_KWARGS if kwarg not in present
        ]
        if missing:
            yield self.finding(
                module,
                node,
                "register_experiment call missing required metadata "
                f"keyword(s): {', '.join(missing)}",
            )


@register_rule
class RegistrySchema(Rule):
    """Registrations must declare a row schema that matches their TypedDict."""

    rule_id = "REG003"
    summary = (
        "@register_experiment call missing schema=, or the declared "
        "roles disagree with the TypedDict's fields"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not _is_register_experiment(node.func):
            return
        schema_kw = next(
            (kw for kw in node.keywords if kw.arg == "schema"), None
        )
        if schema_kw is None or (
            isinstance(schema_kw.value, ast.Constant)
            and schema_kw.value.value is None
        ):
            yield self.finding(
                module,
                node,
                "register_experiment call declares no row schema; pass "
                "schema=schema_from_typeddict(YourRow, roles={...}) so the "
                "orchestrator can validate rows at shard boundaries",
            )
            return
        call = _resolve_schema_call(schema_kw.value, module)
        if call is None:
            # Dynamic construction we cannot follow statically; presence of
            # the keyword is the best a linter can check here.
            return
        declared = _typeddict_field_names(call, module)
        roles = _roles_dict_keys(call)
        if declared is None or roles is None:
            return
        missing = sorted(declared - roles)
        extra = sorted(roles - declared)
        if missing or extra:
            parts = []
            if missing:
                parts.append(
                    "TypedDict field(s) with no role: " + ", ".join(missing)
                )
            if extra:
                parts.append(
                    "role(s) naming no TypedDict field: " + ", ".join(extra)
                )
            yield self.finding(
                module,
                call,
                "schema roles disagree with the row TypedDict ("
                + "; ".join(parts)
                + ")",
            )


def _resolve_schema_call(
    expr: ast.expr, module: ParsedModule
) -> ast.Call | None:
    """Follow ``schema=`` to its ``schema_from_typeddict(...)`` call.

    Accepts the call inline or via a module-level name assigned from one;
    returns ``None`` when the value is built some other way (the rule then
    only checks presence).
    """
    if isinstance(expr, ast.Name):
        assigned = _module_level_assignment(expr.id, module)
        if assigned is None:
            return None
        expr = assigned
    if (
        isinstance(expr, ast.Call)
        and (name := dotted_name(expr.func)) is not None
        and name.rsplit(".", 1)[-1] == "schema_from_typeddict"
    ):
        return expr
    return None


def _module_level_assignment(
    name: str, module: ParsedModule
) -> ast.expr | None:
    """Return the value of a top-level ``name = ...`` assignment, if any."""
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        else:
            continue
        if any(
            isinstance(target, ast.Name) and target.id == name
            for target in targets
        ):
            return stmt.value
    return None


def _typeddict_field_names(
    call: ast.Call, module: ParsedModule
) -> set[str] | None:
    """Declared field names of the TypedDict passed to the schema call.

    Handles the class form (``class Row(TypedDict)`` — AnnAssign fields,
    plus bases declared in the same module) and the functional form
    (``Row = TypedDict("Row", {...})``).  Returns ``None`` when the
    definition cannot be resolved statically.
    """
    if not call.args or not isinstance(call.args[0], ast.Name):
        return None
    return _fields_of(call.args[0].id, module)


def _fields_of(name: str, module: ParsedModule) -> set[str] | None:
    for stmt in module.tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == name:
            return _class_typeddict_fields(stmt, module)
    assigned = _module_level_assignment(name, module)
    if (
        isinstance(assigned, ast.Call)
        and (fn := dotted_name(assigned.func)) is not None
        and fn.rsplit(".", 1)[-1] == "TypedDict"
        and len(assigned.args) >= 2
        and isinstance(assigned.args[1], ast.Dict)
    ):
        keys = assigned.args[1].keys
        if all(
            isinstance(key, ast.Constant) and isinstance(key.value, str)
            for key in keys
        ):
            return {key.value for key in keys}  # type: ignore[union-attr]
    return None


def _class_typeddict_fields(
    node: ast.ClassDef, module: ParsedModule
) -> set[str] | None:
    fields = {
        stmt.target.id
        for stmt in node.body
        if isinstance(stmt, ast.AnnAssign)
        and isinstance(stmt.target, ast.Name)
    }
    for base in node.bases:
        base_name = dotted_name(base)
        if base_name is None:
            return None
        if base_name.rsplit(".", 1)[-1] == "TypedDict":
            continue
        inherited = _fields_of(base_name, module)
        if inherited is None:
            # Base defined elsewhere: the full field set is unknowable here.
            return None
        fields |= inherited
    return fields


def _roles_dict_keys(call: ast.Call) -> set[str] | None:
    """Literal string keys of the ``roles={...}`` keyword, if present."""
    roles = next((kw for kw in call.keywords if kw.arg == "roles"), None)
    if roles is None or not isinstance(roles.value, ast.Dict):
        return None
    if not all(
        isinstance(key, ast.Constant) and isinstance(key.value, str)
        for key in roles.value.keys
    ):
        return None
    return {key.value for key in roles.value.keys}  # type: ignore[union-attr]


@register_rule
class BareExcept(Rule):
    """``except:`` catches SystemExit/KeyboardInterrupt too."""

    rule_id = "EXC001"
    summary = "bare except: clause; name the exception types you mean"
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield self.finding(
                module,
                node,
                "bare except: swallows SystemExit and KeyboardInterrupt; "
                "catch the specific exception types instead",
            )


@register_rule
class SwallowedException(Rule):
    """``except Exception: pass`` erases the contract violation it caught."""

    rule_id = "EXC002"
    summary = (
        "except handler that silently discards a broad exception "
        "(body is only pass/...)"
    )
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if not _is_broad_handler(node):
            return
        if all(_is_noop_statement(stmt) for stmt in node.body):
            yield self.finding(
                module,
                node,
                "broad exception silently swallowed; re-raise, narrow the "
                "type, or record why ignoring is sound",
            )


def _is_broad_handler(node: ast.ExceptHandler) -> bool:
    """Whether the handler catches Exception/BaseException (or everything)."""
    if node.type is None:
        return True
    names = (
        [dotted_name(elt) for elt in node.type.elts]
        if isinstance(node.type, ast.Tuple)
        else [dotted_name(node.type)]
    )
    return any(
        name is not None and name.rsplit(".", 1)[-1] in {"Exception", "BaseException"}
        for name in names
    )


def _is_noop_statement(stmt: ast.stmt) -> bool:
    """Whether a statement does nothing (``pass`` or a bare ``...``)."""
    return isinstance(stmt, ast.Pass) or (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )


@register_rule
class PublicApiAnnotations(Rule):
    """Public functions carry full parameter and return annotations."""

    rule_id = "TYP001"
    summary = (
        "public function/method missing parameter or return annotations "
        "(the static half of the typed-API gate)"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        parent = module.parent(node)
        in_class = isinstance(parent, ast.ClassDef)
        # Nested helpers are implementation detail; only module-level
        # functions and class methods form the typed API surface.
        if not isinstance(parent, (ast.Module, ast.ClassDef)):
            return
        if node.name.startswith("_") and not (
            in_class and node.name == "__init__"
        ):
            return
        args = node.args
        positional = args.posonlyargs + args.args
        skip = 1 if in_class and positional and positional[0].arg in {
            "self",
            "cls",
        } else 0
        unannotated = [
            arg.arg
            for arg in positional[skip:] + args.kwonlyargs
            if arg.annotation is None
        ]
        if args.vararg is not None and args.vararg.annotation is None:
            unannotated.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            unannotated.append("**" + args.kwarg.arg)
        if unannotated:
            yield self.finding(
                module,
                node,
                f"{node.name} has unannotated parameter(s): "
                + ", ".join(unannotated),
            )
        if node.returns is None and node.name != "__init__":
            yield self.finding(
                module,
                node,
                f"{node.name} has no return annotation",
            )
