"""API-contract rules: registry completeness, exceptions, typed API.

``REG*`` keeps the experiment registry honest: a driver module that grows a
sweep entry point (``run_*`` or the ``*_cell`` convention) but forgets
``@register_experiment`` silently drops out of ``repro list``/``repro run``
— and a registration without ``engine=``/``paper_section=`` metadata breaks
the paper-section mapping in ``docs/experiments.md``.  ``EXC*`` bans the
two ways contract violations get swallowed instead of raised.  ``TYP001``
is the static half of the typed-API gate: every public function carries
full parameter and return annotations, so mypy (the dynamic half, run by
``make lint`` when installed) actually has something to check.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.engine import (
    Finding,
    ParsedModule,
    Rule,
    dotted_name,
    register_rule,
)

#: Keyword arguments every ``@register_experiment`` call must carry.
REQUIRED_REGISTRY_KWARGS = ("engine", "paper_section")

#: Function-name conventions that mark a sweep entry point.
ENTRY_POINT_PREFIX = "run_"
ENTRY_POINT_SUFFIX = "_cell"


def _is_register_experiment(func: ast.expr) -> bool:
    """Whether a call target is ``register_experiment`` (bare or dotted)."""
    name = dotted_name(func)
    return name is not None and (
        name == "register_experiment" or name.endswith(".register_experiment")
    )


@register_rule
class RegistryCompleteness(Rule):
    """Experiment modules with entry points must register them."""

    rule_id = "REG001"
    summary = (
        "experiments module defines a run_*/*_cell entry point but never "
        "calls @register_experiment"
    )

    def applies_to(self, module: ParsedModule) -> bool:
        return module.is_experiments

    def finish(self, module: ParsedModule) -> Iterator[Finding]:
        entry_points = [
            node
            for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and not node.name.startswith("_")
            and (
                node.name.startswith(ENTRY_POINT_PREFIX)
                or node.name.endswith(ENTRY_POINT_SUFFIX)
            )
        ]
        if not entry_points:
            return
        registered = any(
            _is_register_experiment(node.func)
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Call)
        )
        if not registered:
            first = entry_points[0]
            yield self.finding(
                module,
                first,
                f"module defines entry point {first.name!r} but never calls "
                "@register_experiment; unregistered experiments are "
                "invisible to `repro list`/`repro run`",
            )


@register_rule
class RegistryMetadata(Rule):
    """Registrations must carry engine and paper-section metadata."""

    rule_id = "REG002"
    summary = (
        "@register_experiment call missing engine= or paper_section= "
        "metadata"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not _is_register_experiment(node.func):
            return
        present = {keyword.arg for keyword in node.keywords}
        missing = [
            kwarg for kwarg in REQUIRED_REGISTRY_KWARGS if kwarg not in present
        ]
        if missing:
            yield self.finding(
                module,
                node,
                "register_experiment call missing required metadata "
                f"keyword(s): {', '.join(missing)}",
            )


@register_rule
class BareExcept(Rule):
    """``except:`` catches SystemExit/KeyboardInterrupt too."""

    rule_id = "EXC001"
    summary = "bare except: clause; name the exception types you mean"
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield self.finding(
                module,
                node,
                "bare except: swallows SystemExit and KeyboardInterrupt; "
                "catch the specific exception types instead",
            )


@register_rule
class SwallowedException(Rule):
    """``except Exception: pass`` erases the contract violation it caught."""

    rule_id = "EXC002"
    summary = (
        "except handler that silently discards a broad exception "
        "(body is only pass/...)"
    )
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if not _is_broad_handler(node):
            return
        if all(_is_noop_statement(stmt) for stmt in node.body):
            yield self.finding(
                module,
                node,
                "broad exception silently swallowed; re-raise, narrow the "
                "type, or record why ignoring is sound",
            )


def _is_broad_handler(node: ast.ExceptHandler) -> bool:
    """Whether the handler catches Exception/BaseException (or everything)."""
    if node.type is None:
        return True
    names = (
        [dotted_name(elt) for elt in node.type.elts]
        if isinstance(node.type, ast.Tuple)
        else [dotted_name(node.type)]
    )
    return any(
        name is not None and name.rsplit(".", 1)[-1] in {"Exception", "BaseException"}
        for name in names
    )


def _is_noop_statement(stmt: ast.stmt) -> bool:
    """Whether a statement does nothing (``pass`` or a bare ``...``)."""
    return isinstance(stmt, ast.Pass) or (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )


@register_rule
class PublicApiAnnotations(Rule):
    """Public functions carry full parameter and return annotations."""

    rule_id = "TYP001"
    summary = (
        "public function/method missing parameter or return annotations "
        "(the static half of the typed-API gate)"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, module: ParsedModule) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        parent = module.parent(node)
        in_class = isinstance(parent, ast.ClassDef)
        # Nested helpers are implementation detail; only module-level
        # functions and class methods form the typed API surface.
        if not isinstance(parent, (ast.Module, ast.ClassDef)):
            return
        if node.name.startswith("_") and not (
            in_class and node.name == "__init__"
        ):
            return
        args = node.args
        positional = args.posonlyargs + args.args
        skip = 1 if in_class and positional and positional[0].arg in {
            "self",
            "cls",
        } else 0
        unannotated = [
            arg.arg
            for arg in positional[skip:] + args.kwonlyargs
            if arg.annotation is None
        ]
        if args.vararg is not None and args.vararg.annotation is None:
            unannotated.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            unannotated.append("**" + args.kwarg.arg)
        if unannotated:
            yield self.finding(
                module,
                node,
                f"{node.name} has unannotated parameter(s): "
                + ", ".join(unannotated),
            )
        if node.returns is None and node.name != "__init__":
            yield self.finding(
                module,
                node,
                f"{node.name} has no return annotation",
            )
