"""Docstring-coverage gate for ``src/repro``.

Walks every module under ``src/repro`` with :mod:`ast` and counts public
definitions (modules, classes, functions and methods whose names do not start
with ``_``) that carry a docstring.  Fails (exit code 1) when coverage drops
below the threshold, listing the offenders, so ``make test`` keeps the
documentation suite honest without any third-party dependency.

Usage::

    python tools/check_docstrings.py [--threshold 95] [--root src/repro]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path


def iter_public_definitions(tree: ast.Module, module_name: str):
    """Yield ``(qualified_name, is_method, has_docstring)`` for the module and
    its public classes, functions and methods."""
    yield module_name, False, ast.get_docstring(tree) is not None

    def walk(node: ast.AST, prefix: str, in_class: bool):
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if child.name.startswith("_"):
                    continue
                qualified = f"{prefix}.{child.name}"
                is_method = in_class and not isinstance(child, ast.ClassDef)
                yield qualified, is_method, ast.get_docstring(child) is not None
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, qualified, True)

    yield from walk(tree, module_name, False)


def collect(root: Path) -> tuple[list[str], int]:
    """Return (undocumented qualified names, total public definitions).

    An undocumented *method* whose name is documented on some class in the
    scanned package is treated as inheriting that docstring — the usual
    convention for overrides of a documented interface method (``compute``,
    ``outgoing_values``, ...).
    """
    entries: list[tuple[str, bool, bool]] = []
    documented_method_names: set[str] = set()
    for path in sorted(root.rglob("*.py")):
        module_name = ".".join(path.relative_to(root.parent).with_suffix("").parts)
        tree = ast.parse(path.read_text(), filename=str(path))
        for qualified, is_method, documented in iter_public_definitions(
            tree, module_name
        ):
            entries.append((qualified, is_method, documented))
            if is_method and documented:
                documented_method_names.add(qualified.rsplit(".", 1)[-1])

    missing = [
        qualified
        for qualified, is_method, documented in entries
        if not documented
        and not (
            is_method and qualified.rsplit(".", 1)[-1] in documented_method_names
        )
    ]
    return missing, len(entries)


def main() -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "src" / "repro",
        help="package directory to scan",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=95.0,
        help="minimum percentage of public definitions with docstrings",
    )
    args = parser.parse_args()

    if not args.root.is_dir():
        print(f"error: {args.root} is not a directory", file=sys.stderr)
        return 2
    missing, total = collect(args.root)
    if total == 0:
        print(f"error: no Python files found under {args.root}", file=sys.stderr)
        return 2
    documented = total - len(missing)
    coverage = 100.0 * documented / total if total else 100.0
    print(
        f"docstring coverage: {documented}/{total} public definitions "
        f"({coverage:.1f}%), threshold {args.threshold:.1f}%"
    )
    if coverage < args.threshold:
        print("\nundocumented public definitions:")
        for name in missing:
            print(f"  - {name}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
