"""Docstring-coverage gate for ``src/repro`` (and any extra roots).

Walks every module under the given roots with :mod:`ast` and counts public
definitions (modules, classes, functions and methods whose names do not start
with ``_``) that carry a docstring.  Fails (exit code 1) when coverage drops
below the threshold, listing the offenders, so ``make test`` keeps the
documentation suite honest without any third-party dependency.

``--root`` may repeat (default: ``src/repro``), so the gate also covers the
benchmark scripts.  ``--require`` names modules that must appear in the scan
— a guard against silently dropping a package (e.g. ``repro.sweeps`` or the
``repro.cli`` module) from coverage by moving it.

Usage::

    python tools/check_docstrings.py [--threshold 95]
        [--root src/repro] [--root benchmarks]
        [--require repro.cli] [--require repro.sweeps.registry]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path


def iter_public_definitions(tree: ast.Module, module_name: str):
    """Yield ``(qualified_name, is_method, has_docstring)`` for the module and
    its public classes, functions and methods."""
    yield module_name, False, ast.get_docstring(tree) is not None

    def walk(node: ast.AST, prefix: str, in_class: bool):
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if child.name.startswith("_"):
                    continue
                qualified = f"{prefix}.{child.name}"
                is_method = in_class and not isinstance(child, ast.ClassDef)
                yield qualified, is_method, ast.get_docstring(child) is not None
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, qualified, True)

    yield from walk(tree, module_name, False)


def collect(roots: list[Path]) -> tuple[list[str], int, set[str]]:
    """Return (undocumented names, total public definitions, scanned modules).

    An undocumented *method* whose name is documented on some class in the
    scanned packages is treated as inheriting that docstring — the usual
    convention for overrides of a documented interface method (``compute``,
    ``outgoing_values``, ...).
    """
    entries: list[tuple[str, bool, bool]] = []
    documented_method_names: set[str] = set()
    scanned_modules: set[str] = set()
    for root in roots:
        for path in sorted(root.rglob("*.py")):
            module_name = ".".join(
                path.relative_to(root.parent).with_suffix("").parts
            )
            if module_name.endswith(".__init__"):
                scanned_modules.add(module_name.rsplit(".", 1)[0])
            scanned_modules.add(module_name)
            tree = ast.parse(path.read_text(), filename=str(path))
            for qualified, is_method, documented in iter_public_definitions(
                tree, module_name
            ):
                entries.append((qualified, is_method, documented))
                if is_method and documented:
                    documented_method_names.add(qualified.rsplit(".", 1)[-1])

    missing = [
        qualified
        for qualified, is_method, documented in entries
        if not documented
        and not (
            is_method and qualified.rsplit(".", 1)[-1] in documented_method_names
        )
    ]
    return missing, len(entries), scanned_modules


def main() -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        action="append",
        default=None,
        help="package directory to scan (repeatable; default: src/repro)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=95.0,
        help="minimum percentage of public definitions with docstrings",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="MODULE",
        help="module that must appear in the scan (repeatable)",
    )
    args = parser.parse_args()

    roots = args.root or [
        Path(__file__).resolve().parent.parent / "src" / "repro"
    ]
    for root in roots:
        if not root.is_dir():
            print(f"error: {root} is not a directory", file=sys.stderr)
            return 2
    missing, total, scanned = collect(roots)
    if total == 0:
        print(f"error: no Python files found under {roots}", file=sys.stderr)
        return 2
    absent = [module for module in args.require if module not in scanned]
    if absent:
        print(
            "error: required modules missing from the scan: "
            + ", ".join(absent),
            file=sys.stderr,
        )
        return 2
    documented = total - len(missing)
    coverage = 100.0 * documented / total if total else 100.0
    print(
        f"docstring coverage: {documented}/{total} public definitions "
        f"({coverage:.1f}%), threshold {args.threshold:.1f}%"
    )
    if coverage < args.threshold:
        print("\nundocumented public definitions:")
        for name in missing:
            print(f"  - {name}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
