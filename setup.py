"""Packaging for the VaidyaTL12 reproduction.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so editable installs
work in offline environments without the ``wheel`` package (pip falls back
to ``setup.py develop`` when invoked with ``--no-use-pep517``).  The console
script makes ``repro`` available on PATH after ``pip install -e .``; from a
bare checkout the same CLI runs as ``PYTHONPATH=src python -m repro``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-vaidya-tseng-liang-podc12",
    version="1.0.0",
    description=(
        "Reproduction of 'Iterative Approximate Byzantine Consensus in "
        "Arbitrary Directed Graphs' (Vaidya, Tseng, Liang; PODC 2012)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: ship the py.typed marker so downstream type checkers consume
    # the package's inline annotations (gated by mypy.ini + reprolint TYP001).
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
