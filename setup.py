"""Setuptools shim so that editable installs work in offline environments
without the `wheel` package (pip falls back to `setup.py develop` when invoked
with --no-use-pep517)."""

from setuptools import setup

setup()
