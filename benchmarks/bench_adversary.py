"""Adversary benchmark: batch-native strategies vs the scalar adapter.

Times every strategy in the batch-native Byzantine library
(:mod:`repro.adversary.vectorized`) against its
:class:`~repro.adversary.vectorized.ScalarStrategyAdapter` counterpart on the
same :class:`~repro.simulation.vectorized.VectorizedEngine` batch.  The
headline scenario is the paper's **split-brain necessity attack**: a
"split-brain barbell" — two complete halves with no cross edges, ``f`` faulty
nodes wired to everyone — carries an explicit violating partition, so the
witness-driven :class:`~repro.adversary.vectorized.BatchSplitBrainStrategy`
runs at any size without a witness search.

The headline number is ``speedups.split_brain_native_vs_adapter``: per
run-round throughput of the native strategy over the adapter replaying the
scalar :class:`~repro.adversary.strategies.SplitBrainStrategy` row by row.
Results land in ``BENCH_adversary.json`` using the unified benchmark schema
(shared with the other ``BENCH_*.json`` files via
:func:`repro.sweeps.provenance.bench_payload`); run via ``make
bench-adversary`` or::

    PYTHONPATH=src python benchmarks/bench_adversary.py [--n 40] [--batch 64]

Every timed pair is equivalence-guarded first: the native and adapter paths
must produce bit-identical ``B = 1`` trajectories (identical RNG streams for
the randomized strategies) or the benchmark refuses to run.  ``--smoke``
runs a tiny instance with the guard and writes no file (CI runs this on
every push).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.adversary.strategies import (
    BroadcastConsistentStrategy,
    ExtremePushStrategy,
    FrozenValueStrategy,
    RandomNoiseStrategy,
    SplitBrainStrategy,
    StaticValueStrategy,
)
from repro.adversary.vectorized import (
    BatchBroadcastConsistentWrapper,
    BatchExtremePushStrategy,
    BatchFrozenValueStrategy,
    BatchRandomNoiseStrategy,
    BatchSplitBrainStrategy,
    BatchStaticValueStrategy,
    ScalarStrategyAdapter,
)
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.conditions.necessary import verify_witness
from repro.graphs.digraph import Digraph
from repro.simulation.engine import SimulationConfig
from repro.simulation.vectorized import VectorizedEngine, random_input_matrix
from repro.sweeps.provenance import bench_payload
from repro.types import PartitionWitness


def split_brain_barbell(n: int, f: int) -> tuple[Digraph, PartitionWitness]:
    """Return a condition-violating graph with an explicit witness.

    Nodes ``0 .. n-f-1`` form two complete halves ``L`` and ``R`` with no
    edges between them; the last ``f`` nodes are faulty and bidirectionally
    connected to every node.  With ``F`` excluded neither half can reach the
    other at all, so ``(F, L, C=∅, R)`` violates the Theorem-1 condition at
    any ``f >= 1`` — the witness needs no search and scales to any ``n``.
    """
    if n - f < 4 or f < 1:
        raise SystemExit(f"need n - f >= 4 and f >= 1, got n={n}, f={f}")
    fault_free = n - f
    half = fault_free // 2
    left = frozenset(range(half))
    right = frozenset(range(half, fault_free))
    faulty = frozenset(range(fault_free, n))
    graph = Digraph(nodes=range(n))
    for side in (left, right):
        for source in side:
            for target in side:
                if source != target:
                    graph.add_edge(source, target)
    for bad in faulty:
        for node in range(fault_free):
            graph.add_bidirectional_edge(bad, node)
    witness = PartitionWitness(
        faulty=faulty, left=left, center=frozenset(), right=right
    )
    return graph, witness


def strategy_pairs(witness: PartitionWitness, seed: int):
    """Return ``(label, native factory, adapter factory)`` per strategy.

    Factories take the batch size and return a fresh adversary, so timed
    runs and guard runs never share stateful strategies or RNG streams.
    The randomized pair draws from identically seeded per-row streams on
    both sides (the RNG-stream contract).
    """

    def spawned(batch: int) -> list[np.random.Generator]:
        return [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(seed).spawn(batch)
        ]

    def noise_native(batch: int):
        return BatchRandomNoiseStrategy(-10.0, 10.0, rng=spawned(batch))

    def noise_adapter(batch: int):
        streams = iter(spawned(batch))
        return ScalarStrategyAdapter(
            factory=lambda: RandomNoiseStrategy(-10.0, 10.0, rng=next(streams))
        )

    return [
        (
            "split_brain",
            lambda batch: BatchSplitBrainStrategy(witness, 0.0, 1.0, margin=1.0),
            lambda batch: ScalarStrategyAdapter(
                strategy=SplitBrainStrategy(witness, 0.0, 1.0, margin=1.0)
            ),
        ),
        (
            "static",
            lambda batch: BatchStaticValueStrategy(500.0),
            lambda batch: ScalarStrategyAdapter(strategy=StaticValueStrategy(500.0)),
        ),
        (
            "frozen",
            lambda batch: BatchFrozenValueStrategy(),
            lambda batch: ScalarStrategyAdapter(factory=FrozenValueStrategy),
        ),
        ("noise", noise_native, noise_adapter),
        (
            "extreme_push",
            lambda batch: BatchExtremePushStrategy(2.0),
            lambda batch: ScalarStrategyAdapter(strategy=ExtremePushStrategy(2.0)),
        ),
        (
            "broadcast_extreme",
            lambda batch: BatchBroadcastConsistentWrapper(
                BatchExtremePushStrategy(2.0)
            ),
            lambda batch: ScalarStrategyAdapter(
                strategy=BroadcastConsistentStrategy(ExtremePushStrategy(2.0))
            ),
        ),
    ]


def _make_engine(graph, rule, faulty, adversary, rounds: int) -> VectorizedEngine:
    return VectorizedEngine(
        graph,
        rule,
        faulty=faulty,
        adversary=adversary,
        config=SimulationConfig(
            max_rounds=rounds, record_history=False, stop_on_convergence=False
        ),
    )


def time_rounds(engine: VectorizedEngine, matrix, rounds: int) -> float:
    """Step ``rounds`` iterations over ``matrix``; return elapsed seconds."""
    state = matrix
    start = time.perf_counter()
    for round_index in range(1, rounds + 1):
        state = engine.step_matrix(state, round_index)
    return time.perf_counter() - start


def run_benchmark(
    n: int = 40,
    f: int = 4,
    batch: int = 64,
    rounds: int = 25,
    seed: int = 17,
) -> dict:
    """Time every native/adapter strategy pair on the barbell scenario.

    Returns the result dictionary that is also written to
    ``BENCH_adversary.json``.
    """
    if batch < 1:
        raise SystemExit(f"--batch must be >= 1, got {batch}")
    if rounds < 1:
        raise SystemExit(f"--rounds must be >= 1, got {rounds}")
    graph, witness = split_brain_barbell(n, f)
    if not verify_witness(graph, f, witness):
        raise SystemExit("barbell witness failed verification; refusing to benchmark")
    rule = TrimmedMeanRule(f)
    faulty = witness.faulty
    guard_rounds = min(rounds, 20)

    results: dict[str, dict] = {}
    speedups: dict[str, float] = {}
    for label, native_factory, adapter_factory in strategy_pairs(witness, seed):
        # Guard: the native strategy must be bit-exact with the adapter.
        engines = [
            _make_engine(graph, rule, faulty, factory(1), guard_rounds)
            for factory in (native_factory, adapter_factory)
        ]
        single = random_input_matrix(engines[0].nodes, 1, rng=seed)
        outcomes = [
            engine.run_batch(single.copy()) for engine in engines
        ]
        if not np.array_equal(
            outcomes[0].final_states, outcomes[1].final_states
        ):
            raise SystemExit(
                f"native strategy {label!r} is not bit-exact with its "
                "scalar adapter counterpart; refusing to benchmark"
            )

        timings: dict[str, float] = {}
        for mode, factory in (("native", native_factory), ("adapter", adapter_factory)):
            engine = _make_engine(graph, rule, faulty, factory(batch), rounds)
            matrix = random_input_matrix(engine.nodes, batch, rng=seed)
            # Warm up the same engine that gets timed, so the one-off array
            # and channel-layout setup stays outside the timed region.
            engine.step_matrix(matrix, 1)
            timings[mode] = time_rounds(engine, matrix, rounds)
        native_throughput = (batch * rounds) / timings["native"]
        adapter_throughput = (batch * rounds) / timings["adapter"]
        results[label] = {
            "native_seconds": timings["native"],
            "adapter_seconds": timings["adapter"],
            "native_run_rounds_per_sec": native_throughput,
            "adapter_run_rounds_per_sec": adapter_throughput,
        }
        speedups[f"{label}_native_vs_adapter"] = (
            native_throughput / adapter_throughput
        )

    return bench_payload(
        benchmark="adversary-batch",
        scenario={
            "graph": f"split_brain_barbell(n={n}, f={f})",
            "n": n,
            "f": f,
            "witness": witness.describe(),
            "batch": batch,
            "rounds": rounds,
            "seed": seed,
        },
        results=results,
        speedups=speedups,
    )


def main() -> None:
    """CLI entry point: run the benchmark and write ``BENCH_adversary.json``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=40, help="total nodes")
    parser.add_argument("--f", type=int, default=4, help="fault budget")
    parser.add_argument("--batch", type=int, default=64, help="batch size B")
    parser.add_argument("--rounds", type=int, default=25, help="rounds per run")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny equivalence-guarded run; no file written (CI mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_adversary.json",
        help="output JSON path",
    )
    args = parser.parse_args()
    if args.smoke:
        result = run_benchmark(n=12, f=1, batch=4, rounds=5)
        print("adversary benchmark smoke OK (equivalence guard passed)")
        return
    result = run_benchmark(
        n=args.n, f=args.f, batch=args.batch, rounds=args.rounds
    )
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    headline = result["speedups"]["split_brain_native_vs_adapter"]
    print(
        f"\nbatch-native split-brain throughput is {headline:.1f}x the "
        f"scalar-adapter path on {result['scenario']['graph']} with "
        f"B={result['scenario']['batch']}"
    )


if __name__ == "__main__":
    main()
