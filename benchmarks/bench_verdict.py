"""Verdict-stack benchmark: layered feasibility decisions with certificates.

Times :func:`repro.conditions.verdict.feasibility_verdict` across the
100–1000-node families of the ``feasibility_at_scale`` battery, recording
the per-layer wall-clock split and which layer decided each case.  Before
any number is reported the harness runs two refusal guards:

* **Parity guard** — on every small-``n`` case (within the exhaustive cap)
  the verdict must agree with the exact bitset checker
  (:func:`find_violating_partition`), and the DPLL constraint backend must
  agree with both; any witness produced must re-verify.
* **Certificate guard** — every decided verdict in the timed battery must
  carry a certificate that
  :func:`repro.conditions.verdict.verify_certificate` re-checks from
  scratch; a failed certificate aborts the benchmark.

The headline number is ``speedups.core_screens_vs_exhaustive``: the
core-structure screen versus the full bitset enumeration on the same
``core_network(20, 2)`` instance.  Results land in ``BENCH_verdict.json``
using the unified schema v2 (via
:func:`repro.sweeps.provenance.bench_payload`, documented in
``docs/performance.md``); run via ``make bench-verdict`` or::

    PYTHONPATH=src python benchmarks/bench_verdict.py [--smoke]

``--smoke`` runs both guards plus a single timed case and skips the JSON
write — the CI matrix runs it (``make bench-verdict-smoke``) so the stack
and its guards stay exercised on every push.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.conditions.exact import exact_violation_search
from repro.conditions.necessary import (
    check_feasibility,
    find_violating_partition,
    verify_witness,
)
from repro.conditions.verdict import (
    UNKNOWN,
    feasibility_verdict,
    verify_certificate,
)
from repro.experiments.feasibility_scale import feasibility_scale_battery
from repro.graphs.generators import (
    chord_network,
    complete_graph,
    core_network,
    hypercube,
    undirected_ring,
)
from repro.graphs.random_graphs import erdos_renyi_digraph
from repro.sweeps.provenance import bench_payload


def parity_cases() -> list[tuple[str, object, int]]:
    """Small-``n`` cases (within the exhaustive cap) for the parity guard."""
    cases = [
        ("hypercube d=3 f=1", hypercube(3), 1),
        ("ring n=6 f=1", undirected_ring(6), 1),
        ("chord n=7 f=2", chord_network(7, 2), 2),
        ("chord n=11 f=2", chord_network(11, 2), 2),
        ("complete n=7 f=2", complete_graph(7), 2),
        ("core n=10 f=3", core_network(10, 3), 3),
    ]
    for seed in range(6):
        graph = erdos_renyi_digraph(9, 0.35, rng=seed)
        cases.append((f"erdos-renyi n=9 #{seed}", graph, 1))
    return cases


def run_parity_guard() -> int:
    """Assert verdict-stack and DPLL parity with the exact checker.

    Returns the number of cases checked; raises ``SystemExit`` on any
    divergence or invalid witness, refusing to benchmark a broken stack.
    """
    checked = 0
    for label, graph, f in parity_cases():
        exact_witness = find_violating_partition(graph, f)
        exact_infeasible = exact_witness is not None
        verdict = feasibility_verdict(graph, f)
        if verdict.status == UNKNOWN or (
            (verdict.status == "INFEASIBLE") != exact_infeasible
        ):
            raise SystemExit(
                f"verdict stack diverged from the exact checker on {label}: "
                f"{verdict.status} vs infeasible={exact_infeasible}; "
                "refusing to benchmark"
            )
        if not verify_certificate(graph, f, verdict):
            raise SystemExit(
                f"verdict certificate failed re-verification on {label}; "
                "refusing to benchmark"
            )
        dpll = exact_violation_search(graph, f, backend="dpll")
        if (dpll.status == "violation") != exact_infeasible:
            raise SystemExit(
                f"DPLL backend diverged from the exact checker on {label}; "
                "refusing to benchmark"
            )
        for witness in (exact_witness, dpll.witness):
            if witness is not None and not verify_witness(graph, f, witness):
                raise SystemExit(
                    f"witness failed re-verification on {label}; "
                    "refusing to benchmark"
                )
        checked += 1
    return checked


def time_verdict_battery(
    battery: list[tuple[str, object, int]],
    witness_attempts: int = 60,
) -> dict[str, dict[str, object]]:
    """Time the verdict stack per battery case, enforcing the certificate guard."""
    results: dict[str, dict[str, object]] = {}
    for label, graph, f in battery:
        start = time.perf_counter()
        verdict = feasibility_verdict(
            graph, f, witness_attempts=witness_attempts, rng=23
        )
        elapsed = time.perf_counter() - start
        if not verify_certificate(graph, f, verdict):
            raise SystemExit(
                f"certificate failed re-verification on {label}; "
                "refusing to benchmark"
            )
        layer_seconds = {
            timing.layer: timing.seconds for timing in verdict.timings
        }
        results[f"verdict_{label}"] = {
            "n": graph.number_of_nodes,
            "f": f,
            "status": verdict.status,
            "decided_by": verdict.decided_by,
            "certificate": getattr(verdict.certificate, "kind", None),
            "certificate_verified": True,
            "total_seconds": elapsed,
            "layer_seconds": layer_seconds,
        }
    return results


def run_benchmark(witness_attempts: int = 60) -> dict:
    """Run guards, the timed battery, and the headline comparison."""
    parity_count = run_parity_guard()
    battery = feasibility_scale_battery()
    results = time_verdict_battery(battery, witness_attempts=witness_attempts)
    decided = sum(
        1 for entry in results.values() if entry["status"] != UNKNOWN
    )
    results["parity_guard"] = {
        "cases": parity_count,
        "all_agree": True,
    }
    results["coverage"] = {
        "battery_cases": len(battery),
        "decided": decided,
        "decided_fraction": decided / len(battery),
    }

    # Headline: the core-structure screen versus the full enumeration on the
    # same instance (both produce a FEASIBLE answer; the screen's is
    # certificate-backed and ~constant-time).
    headline_graph = core_network(20, 2)
    start = time.perf_counter()
    exhaustive = check_feasibility(
        headline_graph, 2, use_structural_shortcuts=False
    )
    exhaustive_seconds = time.perf_counter() - start
    start = time.perf_counter()
    verdict = feasibility_verdict(headline_graph, 2)
    verdict_seconds = time.perf_counter() - start
    if not exhaustive.satisfied or verdict.status != "FEASIBLE":
        raise SystemExit(
            "headline case disagreement on core_network(20, 2); "
            "refusing to benchmark"
        )
    speedup = exhaustive_seconds / max(verdict_seconds, 1e-9)
    results["headline_core20"] = {
        "exhaustive_seconds": exhaustive_seconds,
        "verdict_seconds": verdict_seconds,
        "decided_by": verdict.decided_by,
        "speedup": speedup,
    }
    return bench_payload(
        benchmark="verdict-stack",
        scenario={
            "battery": [label for label, _, _ in battery],
            "witness_attempts": witness_attempts,
            "parity_cases": parity_count,
            "headline": "core_network(n=20, f=2) screens vs exhaustive",
        },
        results=results,
        speedups={
            "core_screens_vs_exhaustive": speedup,
            "decided_fraction": decided / len(battery),
        },
    )


def main() -> None:
    """CLI entry point: run the benchmark and write ``BENCH_verdict.json``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--witness-attempts",
        type=int,
        default=60,
        help="randomized witness-search attempts per case (default 60)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="guards + one tiny timed case; prints results, writes no file",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_verdict.json",
        help="output JSON path",
    )
    args = parser.parse_args()
    if args.smoke:
        checked = run_parity_guard()
        smoke_battery = [
            case for case in feasibility_scale_battery() if "n=100 " in case[0]
        ]
        results = time_verdict_battery(smoke_battery, witness_attempts=20)
        print(json.dumps(results, indent=2))
        print(
            f"\nverdict smoke OK: {checked} parity cases agree, "
            f"{len(results)} timed cases certificate-verified"
        )
        return
    result = run_benchmark(witness_attempts=args.witness_attempts)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(
        f"\nverdict stack decided "
        f"{result['results']['coverage']['decided']}/"
        f"{result['results']['coverage']['battery_cases']} battery cases; "
        f"screens are {result['speedups']['core_screens_vs_exhaustive']:.0f}x "
        f"the exhaustive checker on core_network(20, 2)"
    )


if __name__ == "__main__":
    main()
