"""Asynchronous-engine benchmark: scalar vs vectorized vs batched throughput.

Times one fixed scenario — a core network under the extreme-pushing adversary
with bounded message delays and sporadic activation — through three paths:

* ``scalar``: :class:`repro.simulation.async_engine.PartiallyAsynchronousEngine`
  on a sample of full runs;
* ``vectorized_single``: :class:`repro.simulation.vectorized_async.VectorizedAsyncEngine`
  with a batch of one;
* ``batch``: the same engine over the full ``(B, n)`` state matrix and
  ``(B, E, max_delay + 1)`` delivery ring.

The headline number is ``speedups.batch_vs_scalar``: the ratio of
per-run-round throughput between the batched vectorized pass and the scalar
engine on the same scenario.  Results land in ``BENCH_async.json`` using the
same unified benchmark schema as ``BENCH_engine.json``
(:func:`repro.sweeps.provenance.bench_payload`; see ``docs/performance.md``);
run via ``make bench-async`` or::

    PYTHONPATH=src python benchmarks/bench_async.py [--n 200] [--batch 64]

The script first cross-checks the two asynchronous engines round-for-round on
a small instance under the shared RNG-stream contract, so a benchmark run can
never report a speedup for an engine that drifted from the reference
semantics.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.adversary.selection import random_fault_set
from repro.adversary.strategies import ExtremePushStrategy
from repro.adversary.vectorized import BatchExtremePushStrategy
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.graphs.generators import core_network
from repro.simulation.engine import SimulationConfig
from repro.simulation.async_engine import PartiallyAsynchronousEngine
from repro.simulation.inputs import uniform_random_inputs
from repro.simulation.vectorized import random_input_matrix
from repro.simulation.vectorized_async import (
    VectorizedAsyncEngine,
    async_cross_check_engines,
)
from repro.sweeps.provenance import bench_payload


def time_scalar_run(
    graph,
    rule,
    faulty,
    config,
    max_delay: int,
    update_probability: float,
    inputs: dict,
    seed: int,
) -> float:
    """Run the scalar asynchronous engine once; return elapsed seconds."""
    engine = PartiallyAsynchronousEngine(
        graph,
        rule,
        faulty=faulty,
        adversary=ExtremePushStrategy(1.0),
        config=config,
        max_delay=max_delay,
        update_probability=update_probability,
        rng=seed,
    )
    start = time.perf_counter()
    engine.run(inputs)
    return time.perf_counter() - start


def time_batch_run(engine: VectorizedAsyncEngine, matrix, seed: int) -> float:
    """Run one batched pass of the vectorized engine; return elapsed seconds."""
    start = time.perf_counter()
    engine.run_batch(matrix, rng=seed)
    return time.perf_counter() - start


def run_benchmark(
    n: int = 200,
    f: int = 3,
    batch: int = 64,
    rounds: int = 25,
    max_delay: int = 2,
    update_probability: float = 0.9,
    scalar_runs: int = 2,
    seed: int = 17,
) -> dict:
    """Benchmark the three asynchronous engine paths on one core-network scenario.

    ``scalar_runs`` bounds how many of the ``batch`` runs the scalar engine is
    actually timed on — its per-run cost is independent of the batch, so the
    sample is representative while keeping total wall time small.  Returns
    the result dictionary that is also written to ``BENCH_async.json``.
    """
    if batch < 1:
        raise SystemExit(f"--batch must be >= 1, got {batch}")
    if rounds < 1:
        raise SystemExit(f"--rounds must be >= 1, got {rounds}")
    if scalar_runs < 1:
        raise SystemExit(f"--scalar-runs must be >= 1, got {scalar_runs}")
    if max_delay < 0:
        raise SystemExit(f"--max-delay must be >= 0, got {max_delay}")
    graph = core_network(n, f)
    rule = TrimmedMeanRule(f)
    faulty = random_fault_set(graph, f, rng=seed)
    config = SimulationConfig(
        max_rounds=rounds,
        record_history=False,
        stop_on_convergence=False,
    )

    # Guard: never benchmark an engine that diverged from the reference.
    small = core_network(10, 2)
    report = async_cross_check_engines(
        graph=small,
        rule=TrimmedMeanRule(2),
        inputs=uniform_random_inputs(small.nodes, rng=seed),
        faulty=random_fault_set(small, 2, rng=seed),
        adversary=ExtremePushStrategy(delta=1.0),
        config=SimulationConfig(max_rounds=30, stop_on_convergence=False),
        max_delay=max_delay,
        update_probability=update_probability,
        seed=seed,
    )
    if not report.identical:
        raise SystemExit(
            "vectorized asynchronous engine is not bit-exact with the scalar "
            "engine; refusing to benchmark"
        )

    scalar_seconds = 0.0
    timed_runs = min(scalar_runs, batch)
    for run in range(timed_runs):
        inputs = uniform_random_inputs(graph.nodes, rng=seed + run)
        scalar_seconds += time_scalar_run(
            graph,
            rule,
            faulty,
            config,
            max_delay,
            update_probability,
            inputs,
            seed + run,
        )
    scalar_run_rounds_per_sec = (timed_runs * rounds) / scalar_seconds

    vector_engine = VectorizedAsyncEngine(
        graph,
        rule,
        faulty=faulty,
        adversary=BatchExtremePushStrategy(1.0),
        config=config,
        max_delay=max_delay,
        update_probability=update_probability,
    )
    single = random_input_matrix(vector_engine.nodes, 1, rng=seed)
    time_batch_run(vector_engine, single, seed)  # warm-up: array setup
    single_seconds = time_batch_run(vector_engine, single, seed)
    single_run_rounds_per_sec = rounds / single_seconds

    matrix = random_input_matrix(vector_engine.nodes, batch, rng=seed)
    batch_seconds = time_batch_run(vector_engine, matrix, seed)
    batch_run_rounds_per_sec = (batch * rounds) / batch_seconds

    return bench_payload(
        benchmark="engine-async",
        scenario={
            "graph": f"core_network(n={n}, f={f})",
            "n": n,
            "f": f,
            "batch": batch,
            "rounds": rounds,
            "max_delay": max_delay,
            "update_probability": update_probability,
            "adversary": "extreme-push(delta=1.0)",
            "seed": seed,
        },
        results={
            "scalar": {
                "runs_timed": timed_runs,
                "seconds": scalar_seconds,
                "run_rounds_per_sec": scalar_run_rounds_per_sec,
            },
            "vectorized_single": {
                "seconds": single_seconds,
                "run_rounds_per_sec": single_run_rounds_per_sec,
            },
            "batch": {
                "seconds": batch_seconds,
                "run_rounds_per_sec": batch_run_rounds_per_sec,
            },
        },
        speedups={
            "single_vs_scalar": single_run_rounds_per_sec
            / scalar_run_rounds_per_sec,
            "batch_vs_scalar": batch_run_rounds_per_sec
            / scalar_run_rounds_per_sec,
        },
    )


def main() -> None:
    """CLI entry point: run the benchmark and write ``BENCH_async.json``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=200, help="graph size")
    parser.add_argument("--f", type=int, default=3, help="fault budget")
    parser.add_argument("--batch", type=int, default=64, help="batch size B")
    parser.add_argument("--rounds", type=int, default=25, help="rounds per run")
    parser.add_argument(
        "--max-delay", type=int, default=2, help="delay bound B (iterations)"
    )
    parser.add_argument(
        "--update-probability",
        type=float,
        default=0.9,
        help="per-round activation probability",
    )
    parser.add_argument(
        "--scalar-runs",
        type=int,
        default=2,
        help="how many runs to time on the scalar engine",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_async.json",
        help="output JSON path",
    )
    args = parser.parse_args()
    result = run_benchmark(
        n=args.n,
        f=args.f,
        batch=args.batch,
        rounds=args.rounds,
        max_delay=args.max_delay,
        update_probability=args.update_probability,
        scalar_runs=args.scalar_runs,
    )
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(
        f"\nbatch throughput is {result['speedups']['batch_vs_scalar']:.1f}x "
        f"the scalar asynchronous engine on {result['scenario']['graph']} "
        f"with B={result['scenario']['batch']}, "
        f"max_delay={result['scenario']['max_delay']}"
    )


if __name__ == "__main__":
    main()
