"""Engine benchmark: scalar vs vectorized vs batched throughput.

Times one fixed scenario — a core network under the extreme-pushing
adversary — through three execution paths:

* ``scalar``: :class:`repro.simulation.engine.SynchronousEngine`, stepped on
  a sample of runs (the per-run-round cost is what matters; the sample keeps
  the benchmark fast);
* ``vectorized``: :class:`repro.simulation.vectorized.VectorizedEngine` with
  a batch of one;
* ``batch``: the same engine over the full ``(B, n)`` state matrix.

The headline number is ``speedups.batch_vs_scalar``: the ratio of
per-run-round throughput between the batched vectorized pass and the scalar
engine on the same scenario.  Results land in ``BENCH_engine.json`` using the
unified benchmark schema (``schema_version``, ``scenario``, ``results``,
``speedups``, ``provenance`` with machine metadata and git sha — shared with
``bench_async.py`` via :func:`repro.sweeps.provenance.bench_payload` and
documented in ``docs/performance.md``); run via ``make bench`` or::

    PYTHONPATH=src python benchmarks/bench_engine.py [--n 200] [--batch 64]

The script also cross-checks the two engines round-for-round on a small
instance first, so a benchmark run can never report a speedup for an engine
that drifted from the reference semantics.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.adversary.selection import random_fault_set
from repro.adversary.strategies import ExtremePushStrategy
from repro.adversary.vectorized import BatchExtremePushStrategy
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.graphs.generators import core_network
from repro.simulation.engine import SimulationConfig, SynchronousEngine
from repro.simulation.inputs import uniform_random_inputs
from repro.simulation.vectorized import (
    VectorizedEngine,
    cross_check_engines,
    random_input_matrix,
)
from repro.sweeps.provenance import bench_payload


def time_scalar_rounds(
    engine: SynchronousEngine, inputs: dict, rounds: int
) -> float:
    """Step the scalar engine ``rounds`` times; return elapsed seconds."""
    state = {node: float(value) for node, value in inputs.items()}
    start = time.perf_counter()
    for round_index in range(1, rounds + 1):
        state = engine.step(state, round_index)
    return time.perf_counter() - start


def time_vectorized_rounds(
    engine: VectorizedEngine, matrix, rounds: int
) -> float:
    """Step the vectorized engine ``rounds`` times; return elapsed seconds."""
    state = matrix
    engine.step_matrix(state, 1)  # warm-up: first call pays array setup
    start = time.perf_counter()
    for round_index in range(1, rounds + 1):
        state = engine.step_matrix(state, round_index)
    return time.perf_counter() - start


def run_benchmark(
    n: int = 200,
    f: int = 3,
    batch: int = 64,
    rounds: int = 25,
    scalar_runs: int = 4,
    seed: int = 17,
) -> dict:
    """Benchmark the three engine paths on one core-network scenario.

    ``scalar_runs`` bounds how many of the ``batch`` runs the scalar engine
    is actually timed on — its per-run cost is independent of the batch, so
    the sample is representative and keeps total wall time small.  Returns
    the result dictionary that is also written to ``BENCH_engine.json``.
    """
    if batch < 1:
        raise SystemExit(f"--batch must be >= 1, got {batch}")
    if rounds < 1:
        raise SystemExit(f"--rounds must be >= 1, got {rounds}")
    if scalar_runs < 1:
        raise SystemExit(f"--scalar-runs must be >= 1, got {scalar_runs}")
    graph = core_network(n, f)
    rule = TrimmedMeanRule(f)
    faulty = random_fault_set(graph, f, rng=seed)
    config = SimulationConfig(
        max_rounds=rounds,
        record_history=False,
        stop_on_convergence=False,
    )

    # Guard: never benchmark an engine that diverged from the reference.
    small = core_network(10, 2)
    report = cross_check_engines(
        graph=small,
        rule=TrimmedMeanRule(2),
        inputs=uniform_random_inputs(small.nodes, rng=seed),
        faulty=random_fault_set(small, 2, rng=seed),
        adversary=ExtremePushStrategy(delta=1.0),
        rounds=30,
    )
    if not report.identical:
        raise SystemExit(
            "vectorized engine is not bit-exact with the scalar engine; "
            "refusing to benchmark"
        )

    scalar_engine = SynchronousEngine(
        graph, rule, faulty=faulty, adversary=ExtremePushStrategy(1.0), config=config
    )
    scalar_seconds = 0.0
    timed_runs = min(scalar_runs, batch)
    for run in range(timed_runs):
        inputs = uniform_random_inputs(graph.nodes, rng=seed + run)
        scalar_seconds += time_scalar_rounds(scalar_engine, inputs, rounds)
    scalar_run_rounds_per_sec = (timed_runs * rounds) / scalar_seconds

    vector_engine = VectorizedEngine(
        graph,
        rule,
        faulty=faulty,
        adversary=BatchExtremePushStrategy(1.0),
        config=config,
    )
    single = random_input_matrix(vector_engine.nodes, 1, rng=seed)
    single_seconds = time_vectorized_rounds(vector_engine, single, rounds)
    single_run_rounds_per_sec = rounds / single_seconds

    matrix = random_input_matrix(vector_engine.nodes, batch, rng=seed)
    batch_seconds = time_vectorized_rounds(vector_engine, matrix, rounds)
    batch_run_rounds_per_sec = (batch * rounds) / batch_seconds

    return bench_payload(
        benchmark="engine-sync",
        scenario={
            "graph": f"core_network(n={n}, f={f})",
            "n": n,
            "f": f,
            "batch": batch,
            "rounds": rounds,
            "adversary": "extreme-push(delta=1.0)",
            "seed": seed,
        },
        results={
            "scalar": {
                "runs_timed": timed_runs,
                "seconds": scalar_seconds,
                "run_rounds_per_sec": scalar_run_rounds_per_sec,
            },
            "vectorized_single": {
                "seconds": single_seconds,
                "run_rounds_per_sec": single_run_rounds_per_sec,
            },
            "batch": {
                "seconds": batch_seconds,
                "run_rounds_per_sec": batch_run_rounds_per_sec,
            },
        },
        speedups={
            "single_vs_scalar": single_run_rounds_per_sec
            / scalar_run_rounds_per_sec,
            "batch_vs_scalar": batch_run_rounds_per_sec
            / scalar_run_rounds_per_sec,
        },
    )


def main() -> None:
    """CLI entry point: run the benchmark and write ``BENCH_engine.json``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=200, help="graph size")
    parser.add_argument("--f", type=int, default=3, help="fault budget")
    parser.add_argument("--batch", type=int, default=64, help="batch size B")
    parser.add_argument("--rounds", type=int, default=25, help="rounds per run")
    parser.add_argument(
        "--scalar-runs",
        type=int,
        default=4,
        help="how many runs to time on the scalar engine",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_engine.json",
        help="output JSON path",
    )
    args = parser.parse_args()
    result = run_benchmark(
        n=args.n,
        f=args.f,
        batch=args.batch,
        rounds=args.rounds,
        scalar_runs=args.scalar_runs,
    )
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(
        f"\nbatch throughput is {result['speedups']['batch_vs_scalar']:.1f}x "
        f"the scalar engine on {result['scenario']['graph']} with "
        f"B={result['scenario']['batch']}"
    )


if __name__ == "__main__":
    main()
