"""Checker benchmark: legacy pure-Python vs bitset-vectorized exact checkers.

Times the exhaustive Theorem-1 search (``find_violating_partition``) through
both execution paths on the paper's chord / hypercube / core families at the
legacy checker's node ceiling, plus ``robustness_degree`` (the ``3^n``
disjoint-pair family) on a core network.  Every timed case is equivalence
guarded first: the two paths must return identical verdicts **and identical
witnesses** (the bitset search replays the legacy candidate order, so any
divergence is a bug) or the benchmark refuses to run.

The headline number is ``speedups.chord_exact_bitset_vs_python``: the exact
Theorem-1 check on ``chord_network(n, 1)`` at the old ``n = 16`` default cap.
Results land in ``BENCH_checker.json`` using the unified schema v2
(``schema_version``, ``scenario``, ``results``, ``speedups``, ``provenance``
via :func:`repro.sweeps.provenance.bench_payload`, documented in
``docs/performance.md``); run via ``make bench-checker`` or::

    PYTHONPATH=src python benchmarks/bench_checker.py [--n 16] [--smoke]

``--smoke`` shrinks every case to a tiny size and skips the JSON write — the
CI matrix runs it (``make bench-checker-smoke``) so the equivalence guard and
both code paths stay exercised on every push.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.conditions.necessary import find_violating_partition
from repro.conditions.robustness import robustness_degree
from repro.graphs.digraph import Digraph
from repro.graphs.generators import chord_network, core_network, hypercube
from repro.sweeps.provenance import bench_payload


def time_exact_check(
    graph: Digraph, f: int, method: str, repeats: int = 1
) -> tuple[float, object]:
    """Time ``find_violating_partition`` via ``method``; return (best seconds,
    witness)."""
    cap = graph.number_of_nodes
    best = float("inf")
    witness = None
    for _ in range(repeats):
        start = time.perf_counter()
        witness = find_violating_partition(graph, f, max_nodes=cap, method=method)
        best = min(best, time.perf_counter() - start)
    return best, witness


def time_robustness_degree(
    graph: Digraph, method: str, repeats: int = 1
) -> tuple[float, int]:
    """Time ``robustness_degree`` via ``method``; return (best seconds, degree)."""
    cap = graph.number_of_nodes
    best = float("inf")
    degree = 0
    for _ in range(repeats):
        start = time.perf_counter()
        degree = robustness_degree(graph, max_nodes=cap, method=method)
        best = min(best, time.perf_counter() - start)
    return best, degree


def run_benchmark(
    n: int = 16,
    hypercube_dimension: int = 4,
    robustness_n: int = 11,
    bitset_repeats: int = 3,
) -> dict:
    """Benchmark both checker paths on the three families; return the payload.

    The legacy path is timed once per case (it dominates total wall time);
    the bitset path takes the best of ``bitset_repeats`` runs.  Equivalence
    between the paths is asserted case by case before any number is
    reported.
    """
    if n < 4:
        raise SystemExit(f"--n must be >= 4, got {n}")
    if robustness_n < 4:
        raise SystemExit(f"--robustness-n must be >= 4, got {robustness_n}")
    exact_cases = [
        ("chord", chord_network(n, 1), 1),
        ("hypercube", hypercube(hypercube_dimension), 1),
        ("core", core_network(n, 1), 1),
    ]
    results: dict[str, dict[str, object]] = {}
    speedups: dict[str, float] = {}
    for label, graph, f in exact_cases:
        python_seconds, python_witness = time_exact_check(graph, f, "python")
        bitset_seconds, bitset_witness = time_exact_check(
            graph, f, "bitset", repeats=bitset_repeats
        )
        if python_witness != bitset_witness:
            raise SystemExit(
                f"bitset checker diverged from the legacy checker on "
                f"{label}: {bitset_witness!r} != {python_witness!r}; "
                "refusing to benchmark"
            )
        speedup = python_seconds / bitset_seconds
        results[f"exact_{label}"] = {
            "n": graph.number_of_nodes,
            "f": f,
            "condition_holds": python_witness is None,
            "python_seconds": python_seconds,
            "bitset_seconds": bitset_seconds,
            "speedup": speedup,
        }
        speedups[f"{label}_exact_bitset_vs_python"] = speedup

    robust_graph = core_network(robustness_n, 2)
    python_seconds, python_degree = time_robustness_degree(robust_graph, "python")
    bitset_seconds, bitset_degree = time_robustness_degree(
        robust_graph, "bitset", repeats=bitset_repeats
    )
    if python_degree != bitset_degree:
        raise SystemExit(
            f"bitset robustness_degree diverged from the legacy checker: "
            f"{bitset_degree} != {python_degree}; refusing to benchmark"
        )
    robust_speedup = python_seconds / bitset_seconds
    results["robustness_degree_core"] = {
        "n": robustness_n,
        "f": 2,
        "degree": python_degree,
        "python_seconds": python_seconds,
        "bitset_seconds": bitset_seconds,
        "speedup": robust_speedup,
    }
    speedups["robustness_degree_bitset_vs_python"] = robust_speedup

    return bench_payload(
        benchmark="checker-exact",
        scenario={
            "exact_cases": [
                f"{label}(n={graph.number_of_nodes}, f={f})"
                for label, graph, f in exact_cases
            ],
            "robustness_case": f"core_network(n={robustness_n}, f=2)",
            "n": n,
            "hypercube_dimension": hypercube_dimension,
            "robustness_n": robustness_n,
            "bitset_repeats": bitset_repeats,
        },
        results=results,
        speedups=speedups,
    )


def main() -> None:
    """CLI entry point: run the benchmark and write ``BENCH_checker.json``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n", type=int, default=16, help="chord/core size (old exact ceiling)"
    )
    parser.add_argument(
        "--hypercube-dimension", type=int, default=4, help="hypercube dimension"
    )
    parser.add_argument(
        "--robustness-n", type=int, default=11, help="robustness case size"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny equivalence-guarded run; prints results, writes no file",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_checker.json",
        help="output JSON path",
    )
    args = parser.parse_args()
    if args.smoke:
        result = run_benchmark(
            n=8, hypercube_dimension=3, robustness_n=7, bitset_repeats=1
        )
        print(json.dumps(result["results"], indent=2))
        print("\nchecker smoke OK: bitset and legacy paths are equivalent")
        return
    result = run_benchmark(
        n=args.n,
        hypercube_dimension=args.hypercube_dimension,
        robustness_n=args.robustness_n,
    )
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    headline = result["speedups"]["chord_exact_bitset_vs_python"]
    print(
        f"\nbitset exact checker is {headline:.1f}x the legacy pure-Python "
        f"path on chord_network(n={args.n}, f=1); robustness_degree is "
        f"{result['speedups']['robustness_degree_bitset_vs_python']:.1f}x"
    )


if __name__ == "__main__":
    main()
