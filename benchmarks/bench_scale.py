"""Scale benchmark: sparse-engine throughput versus ``n``.

Times batched executions of Algorithm 1 on the
:func:`~repro.graphs.random_graphs.heterogeneous_ring_lattice` family (an
``O(n)``-edge sparse graph with heterogeneous in-degrees) at ``n`` from the
paper's scale up to ``10^5``, through three paths:

* ``dense``: :class:`repro.simulation.vectorized.VectorizedEngine` — timed
  only up to ``--dense-max-n`` (its per-degree gathers over a wide state
  matrix dominate beyond that);
* ``sparse_f64``: :class:`repro.simulation.sparse.SparseEngine` at float64,
  bit-exact with the dense path;
* ``sparse_f32``: the same engine at float32 (half-memory tier under the
  documented tolerance contract).

Every point is **equivalence-guarded**: before timing, the harness asserts
scalar-vs-dense bit-equality on a small instance and dense-vs-sparse
bit-equality on every point where the dense engine runs, so the curve can
never report throughput for an engine that drifted from the reference.

The headline numbers are ``speedups.sparse_vs_dense_at_largest_shared_n``
and the ``n = 10^5`` sparse throughput.  Results land in
``BENCH_scale.json`` (unified schema v2 via
:func:`repro.sweeps.provenance.bench_payload`); run via ``make bench-scale``
or::

    PYTHONPATH=src python benchmarks/bench_scale.py [--rounds 10] [--batch 16]

``--smoke`` shrinks the size grid and skips the JSON write — the CI matrix
runs it (``make bench-scale-smoke``) so the equivalence guards execute on
every push without re-timing the full curve.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.adversary.selection import random_fault_set
from repro.adversary.strategies import ExtremePushStrategy
from repro.adversary.vectorized import BatchExtremePushStrategy
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.graphs.random_graphs import heterogeneous_ring_lattice
from repro.simulation.engine import SimulationConfig
from repro.simulation.sparse import SparseEngine
from repro.simulation.vectorized import (
    VectorizedEngine,
    cross_check_engines,
    random_input_matrix,
)
from repro.sweeps.provenance import bench_payload

#: Default size grid; the last point is the roadmap's 10^5 tier.
DEFAULT_SIZES = (200, 1_000, 10_000, 100_000)

#: Sizes used by ``--smoke`` (guards still run; timings are not published).
SMOKE_SIZES = (200, 1_000)


def _time_rounds(engine, matrix: np.ndarray, rounds: int) -> float:
    """Step ``engine`` ``rounds`` times from ``matrix``; return seconds."""
    state = engine.step_matrix(matrix, 1)  # warm-up pays array setup
    state = matrix
    start = time.perf_counter()
    for round_index in range(1, rounds + 1):
        state = engine.step_matrix(state, round_index)
    return time.perf_counter() - start


def _scalar_guard(seed: int) -> None:
    """Refuse to benchmark if the dense engine drifted from the scalar one."""
    small = heterogeneous_ring_lattice(60, 2, rng=seed)
    report = cross_check_engines(
        graph=small,
        rule=TrimmedMeanRule(2),
        inputs={
            node: float(value)
            for node, value in zip(
                sorted(small.nodes, key=repr),
                np.random.default_rng(seed).uniform(size=60),
            )
        },
        faulty=random_fault_set(small, 2, rng=seed),
        adversary=ExtremePushStrategy(delta=1.0),
        rounds=25,
    )
    if not report.identical:
        raise SystemExit(
            "dense engine is not bit-exact with the scalar engine; "
            "refusing to benchmark"
        )


def run_benchmark(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    f: int = 2,
    batch: int = 16,
    rounds: int = 10,
    dense_max_n: int = 10_000,
    seed: int = 23,
) -> dict:
    """Time the dense and sparse paths across the size grid.

    Returns the ``BENCH_scale.json`` payload.  Each point builds one
    heterogeneous ring lattice, asserts dense-vs-sparse bit-equality over
    ``rounds`` rounds wherever the dense engine runs (every ``n`` up to
    ``dense_max_n``), then times each path on a fresh copy of the same
    input matrix.
    """
    if batch < 1:
        raise SystemExit(f"--batch must be >= 1, got {batch}")
    if rounds < 1:
        raise SystemExit(f"--rounds must be >= 1, got {rounds}")
    _scalar_guard(seed)

    per_n: list[dict[str, object]] = []
    largest_shared: dict[str, float] | None = None
    for n in sizes:
        rng = np.random.default_rng(seed)
        graph = heterogeneous_ring_lattice(n, f, rng=rng)
        rule = TrimmedMeanRule(f)
        faulty = random_fault_set(graph, f, rng=rng)
        config = SimulationConfig(
            max_rounds=rounds,
            record_history=False,
            stop_on_convergence=False,
        )

        def build(cls, **kwargs):
            return cls(
                graph,
                rule,
                faulty=faulty,
                adversary=BatchExtremePushStrategy(1.0),
                config=config,
                **kwargs,
            )

        sparse64 = build(SparseEngine)
        matrix = random_input_matrix(sparse64.nodes, batch, rng=seed)
        node_rounds = n * batch * rounds

        point: dict[str, object] = {
            "n": n,
            "edges": graph.number_of_edges,
            "nnz": sparse64.nnz,
            "plane_mb_per_row": sparse64.plane_bytes_per_row / 1e6,
        }

        dense_rate = None
        if n <= dense_max_n:
            dense = build(VectorizedEngine)
            dense_state, sparse_state = matrix.copy(), matrix.copy()
            for round_index in range(1, rounds + 1):
                dense_state = dense.step_matrix(dense_state, round_index)
                sparse_state = sparse64.step_matrix(sparse_state, round_index)
                if not np.array_equal(dense_state, sparse_state):
                    raise SystemExit(
                        f"sparse engine diverged from the dense engine at "
                        f"n={n}, round {round_index}; refusing to benchmark"
                    )
            dense_seconds = _time_rounds(dense, matrix.copy(), rounds)
            dense_rate = node_rounds / dense_seconds
            point["dense"] = {
                "seconds": dense_seconds,
                "node_rounds_per_sec": dense_rate,
            }

        sparse_seconds = _time_rounds(sparse64, matrix.copy(), rounds)
        sparse_rate = node_rounds / sparse_seconds
        point["sparse_f64"] = {
            "seconds": sparse_seconds,
            "node_rounds_per_sec": sparse_rate,
        }

        sparse32 = build(SparseEngine, dtype=np.float32)
        sparse32_seconds = _time_rounds(
            sparse32, matrix.astype(np.float32), rounds
        )
        point["sparse_f32"] = {
            "seconds": sparse32_seconds,
            "node_rounds_per_sec": node_rounds / sparse32_seconds,
        }

        if dense_rate is not None:
            largest_shared = {
                "n": float(n),
                "ratio": sparse_rate / dense_rate,
            }
        per_n.append(point)

    speedups: dict[str, float] = {}
    if largest_shared is not None:
        speedups["sparse_vs_dense_at_largest_shared_n"] = largest_shared["ratio"]
        speedups["largest_shared_n"] = largest_shared["n"]

    return bench_payload(
        benchmark="engine-scale",
        scenario={
            "graph": "heterogeneous_ring_lattice(n, f=2, extra_mean=2.0)",
            "sizes": list(sizes),
            "f": f,
            "batch": batch,
            "rounds": rounds,
            "adversary": "batch-extreme-push(delta=1.0)",
            "dense_max_n": dense_max_n,
            "seed": seed,
        },
        results={f"n={point['n']}": point for point in per_n},
        speedups=speedups,
    )


def main() -> None:
    """CLI entry point: run the benchmark and write ``BENCH_scale.json``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--f", type=int, default=2, help="fault budget")
    parser.add_argument("--batch", type=int, default=16, help="batch size B")
    parser.add_argument("--rounds", type=int, default=10, help="rounds per run")
    parser.add_argument(
        "--dense-max-n",
        type=int,
        default=10_000,
        help="largest n the dense engine is timed (and cross-checked) at",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_SIZES),
        help="size grid to sweep",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny size grid, guards only, no JSON written (CI mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_scale.json",
        help="output JSON path",
    )
    args = parser.parse_args()
    sizes = SMOKE_SIZES if args.smoke else tuple(args.sizes)
    result = run_benchmark(
        sizes=sizes,
        f=args.f,
        batch=args.batch,
        rounds=args.rounds,
        dense_max_n=args.dense_max_n,
    )
    if args.smoke:
        print(
            "scale smoke OK: scalar/dense/sparse equivalence guards passed "
            f"at n in {list(sizes)}"
        )
        return
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    largest = f"n={max(sizes)}"
    rate = result["results"][largest]["sparse_f64"]["node_rounds_per_sec"]
    print(f"\nsparse float64 throughput at {largest}: {rate:,.0f} node-rounds/s")


if __name__ == "__main__":
    main()
