"""Dynamic-topology benchmark: per-round masking overhead and adaptive cost.

Times batched executions of Algorithm 1 on the
:func:`~repro.graphs.random_graphs.heterogeneous_ring_lattice` family under
the schedule kinds of :mod:`repro.simulation.dynamic`:

* ``static`` — the baseline (no masking work at all);
* ``random-edges`` — seeded i.i.d. per-round edge up/down masks;
* ``random-churn`` — seeded i.i.d. per-round sleep/wake masks;
* ``composed`` — both at once (the worst case for the masking path);

each on the dense :class:`~repro.simulation.vectorized.VectorizedEngine`
and the CSR :class:`~repro.simulation.sparse.SparseEngine`, plus one
adversary axis timing the batch-native 1-lookahead
:class:`~repro.adversary.vectorized.BatchAdaptiveStrategy` against the
closed-form extreme-push strategy under the composed schedule.

Every point is **equivalence-guarded** before timing: scalar-vs-dense
lockstep under the composed schedule on a small instance, and
dense-vs-sparse bit-equality per masked round at every timed size — the
table can never report overheads for an engine that drifted from the
reference.  The headline numbers are the ``masking_overhead_*`` ratios
(masked seconds / static seconds, same engine, same inputs).  Results land
in ``BENCH_dynamic.json`` (unified schema v2 via
:func:`repro.sweeps.provenance.bench_payload`); run via
``make bench-dynamic``, or ``make bench-dynamic-smoke`` for the
guards-only CI mode::

    PYTHONPATH=src python benchmarks/bench_dynamic.py [--rounds 10] [--smoke]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.adversary.selection import random_fault_set
from repro.adversary.strategies import ExtremePushStrategy
from repro.adversary.vectorized import (
    BatchAdaptiveStrategy,
    BatchExtremePushStrategy,
)
from repro.algorithms.trimmed_mean import TrimmedMeanRule
from repro.graphs.random_graphs import heterogeneous_ring_lattice
from repro.simulation.dynamic import (
    ComposedSchedule,
    RandomChurnSchedule,
    RandomEdgeSchedule,
    StaticSchedule,
)
from repro.simulation.engine import SimulationConfig
from repro.simulation.sparse import SparseEngine
from repro.simulation.vectorized import (
    VectorizedEngine,
    cross_check_engines,
    random_input_matrix,
)
from repro.sweeps.provenance import bench_payload

#: Default size grid (the masking path is O(E) — modest sizes suffice).
DEFAULT_SIZES = (200, 2_000, 20_000)

#: Sizes used by ``--smoke`` (guards still run; timings are not published).
SMOKE_SIZES = (200, 1_000)

#: Mask probabilities shared by every non-static schedule kind.
P_UP = 0.8
P_AWAKE = 0.85


def _make_schedule(kind: str, seed: int):
    """Build one schedule of the benchmarked kinds."""
    if kind == "static":
        return StaticSchedule()
    if kind == "random-edges":
        return RandomEdgeSchedule(p_up=P_UP, seed=seed)
    if kind == "random-churn":
        return RandomChurnSchedule(p_awake=P_AWAKE, seed=seed)
    if kind == "composed":
        return ComposedSchedule(
            RandomEdgeSchedule(p_up=P_UP, seed=seed),
            RandomChurnSchedule(p_awake=P_AWAKE, seed=seed),
        )
    raise SystemExit(f"unknown schedule kind {kind!r}")


SCHEDULE_KINDS = ("static", "random-edges", "random-churn", "composed")


def _time_rounds(engine, matrix: np.ndarray, rounds: int) -> float:
    """Step ``engine`` ``rounds`` times from ``matrix``; return seconds."""
    state = engine.step_matrix(matrix, 1)  # warm-up pays array setup
    state = matrix
    start = time.perf_counter()
    for round_index in range(1, rounds + 1):
        state = engine.step_matrix(state, round_index)
    return time.perf_counter() - start


def _scalar_guard(seed: int) -> None:
    """Refuse to benchmark if any engine drifts under the composed schedule."""
    small = heterogeneous_ring_lattice(60, 2, rng=seed)
    report = cross_check_engines(
        graph=small,
        rule=TrimmedMeanRule(2),
        inputs={
            node: float(value)
            for node, value in zip(
                sorted(small.nodes, key=repr),
                np.random.default_rng(seed).uniform(size=60),
            )
        },
        faulty=random_fault_set(small, 2, rng=seed),
        adversary=ExtremePushStrategy(delta=1.0),
        rounds=25,
        schedule=_make_schedule("composed", seed),
    )
    if not report.identical:
        raise SystemExit(
            "dense engine is not bit-exact with the scalar engine under the "
            "composed schedule; refusing to benchmark"
        )


def run_benchmark(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    f: int = 2,
    batch: int = 16,
    rounds: int = 10,
    seed: int = 23,
) -> dict:
    """Time the masking overhead per schedule kind across the size grid.

    Returns the ``BENCH_dynamic.json`` payload.  Each point builds one
    heterogeneous ring lattice; per schedule kind it asserts dense-vs-sparse
    bit-equality over ``rounds`` masked rounds, then times each engine on a
    fresh copy of the same input matrix.
    """
    if batch < 1:
        raise SystemExit(f"--batch must be >= 1, got {batch}")
    if rounds < 1:
        raise SystemExit(f"--rounds must be >= 1, got {rounds}")
    _scalar_guard(seed)

    per_n: list[dict[str, object]] = []
    for n in sizes:
        rng = np.random.default_rng(seed)
        graph = heterogeneous_ring_lattice(n, f, rng=rng)
        rule = TrimmedMeanRule(f)
        faulty = random_fault_set(graph, f, rng=rng)
        config = SimulationConfig(
            max_rounds=rounds,
            record_history=False,
            stop_on_convergence=False,
        )

        def build(cls, schedule, adversary=None, **kwargs):
            return cls(
                graph,
                rule,
                faulty=faulty,
                adversary=(
                    adversary
                    if adversary is not None
                    else BatchExtremePushStrategy(1.0)
                ),
                config=config,
                schedule=schedule,
                **kwargs,
            )

        matrix = random_input_matrix(
            tuple(sorted(graph.nodes, key=repr)), batch, rng=seed
        )
        node_rounds = n * batch * rounds

        point: dict[str, object] = {"n": n, "edges": graph.number_of_edges}
        static_seconds: dict[str, float] = {}
        for kind in SCHEDULE_KINDS:
            dense = build(VectorizedEngine, _make_schedule(kind, seed))
            sparse = build(SparseEngine, _make_schedule(kind, seed))
            dense_state, sparse_state = matrix.copy(), matrix.copy()
            for round_index in range(1, rounds + 1):
                dense_state = dense.step_matrix(dense_state, round_index)
                sparse_state = sparse.step_matrix(sparse_state, round_index)
                if not np.array_equal(dense_state, sparse_state):
                    raise SystemExit(
                        f"sparse engine diverged from the dense engine at "
                        f"n={n}, schedule={kind}, round {round_index}; "
                        "refusing to benchmark"
                    )
            entry: dict[str, object] = {}
            for name, engine in (("dense", dense), ("sparse", sparse)):
                seconds = _time_rounds(engine, matrix.copy(), rounds)
                stats = {
                    "seconds": seconds,
                    "node_rounds_per_sec": node_rounds / seconds,
                }
                if kind == "static":
                    static_seconds[name] = seconds
                else:
                    stats["overhead_vs_static"] = (
                        seconds / static_seconds[name]
                    )
                entry[name] = stats
            point[kind] = entry

        # Adversary axis: the 1-lookahead adaptive strategy replays one
        # trimmed round per probe, so its cost relative to the closed-form
        # push is the price of worst-case adaptivity.
        adaptive = build(
            VectorizedEngine,
            _make_schedule("composed", seed),
            adversary=BatchAdaptiveStrategy(mode="lookahead", delta=1.0),
        )
        adaptive_seconds = _time_rounds(adaptive, matrix.copy(), rounds)
        point["adaptive_lookahead"] = {
            "seconds": adaptive_seconds,
            "node_rounds_per_sec": node_rounds / adaptive_seconds,
            "cost_vs_extreme_push": (
                adaptive_seconds / point["composed"]["dense"]["seconds"]
            ),
        }
        per_n.append(point)

    largest = per_n[-1]
    speedups = {
        "masking_overhead_dense_composed_at_largest_n": (
            largest["composed"]["dense"]["overhead_vs_static"]
        ),
        "masking_overhead_sparse_composed_at_largest_n": (
            largest["composed"]["sparse"]["overhead_vs_static"]
        ),
        "adaptive_lookahead_cost_vs_extreme_push_at_largest_n": (
            largest["adaptive_lookahead"]["cost_vs_extreme_push"]
        ),
        "largest_n": float(largest["n"]),
    }

    return bench_payload(
        benchmark="engine-dynamic",
        scenario={
            "graph": "heterogeneous_ring_lattice(n, f=2, extra_mean=2.0)",
            "sizes": list(sizes),
            "f": f,
            "batch": batch,
            "rounds": rounds,
            "adversary": "batch-extreme-push(delta=1.0)",
            "schedules": list(SCHEDULE_KINDS),
            "p_up": P_UP,
            "p_awake": P_AWAKE,
            "seed": seed,
        },
        results={f"n={point['n']}": point for point in per_n},
        speedups=speedups,
    )


def main() -> None:
    """CLI entry point: run the benchmark and write ``BENCH_dynamic.json``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--f", type=int, default=2, help="fault budget")
    parser.add_argument("--batch", type=int, default=16, help="batch size B")
    parser.add_argument("--rounds", type=int, default=10, help="rounds per run")
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_SIZES),
        help="size grid to sweep",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny size grid, guards only, no JSON written (CI mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_dynamic.json",
        help="output JSON path",
    )
    args = parser.parse_args()
    sizes = SMOKE_SIZES if args.smoke else tuple(args.sizes)
    result = run_benchmark(
        sizes=sizes,
        f=args.f,
        batch=args.batch,
        rounds=args.rounds,
    )
    if args.smoke:
        print(
            "dynamic smoke OK: scalar/dense/sparse equivalence guards passed "
            f"under every schedule kind at n in {list(sizes)}"
        )
        return
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    overhead = result["speedups"][
        "masking_overhead_dense_composed_at_largest_n"
    ]
    print(
        f"\ncomposed-schedule masking overhead (dense, n={max(sizes)}): "
        f"{overhead:.2f}x vs static"
    )


if __name__ == "__main__":
    main()
